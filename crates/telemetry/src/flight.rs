//! The flight recorder: a bounded per-thread ring of structured protocol
//! events with global sequence ids.
//!
//! Interleaving bugs in the announcement protocol are notoriously
//! irreproducible: by the time a validation step fails, the schedule that
//! broke it is gone. The flight recorder keeps the last [`FLIGHT_CAP`]
//! protocol events *per thread* — announces, slides, notifies, recoveries,
//! retires, injected stalls — each stamped with a process-global sequence
//! id, so a failure dump reconstructs the recent cross-thread order. Ids
//! are reserved in per-thread batches (see [`SEQ_BATCH`]): they are unique
//! and per-thread monotone, and cross-thread interleavings resolve to
//! batch granularity.
//!
//! # Write protocol (per entry)
//!
//! Each slot is a quartet of atomics. The owning thread first invalidates
//! the slot (`seq ← 0`, `Relaxed`), writes the payload fields (`Relaxed`),
//! then publishes the sequence id with a `Release` store. A dumper reads
//! `seq` with `Acquire` and skips zero slots. A dump racing the owner can
//! still observe a *torn logical* entry (payload from two events) — every
//! field is individually atomic so this is benign, and the dump is a
//! diagnostic, not a source of truth. Failure-path dumps run after the
//! interesting threads have stopped, where the capture is exact.

use core::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Events a thread can retain in its flight-recorder ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum FlightKind {
    /// An update operation announced itself in the U-ALL/RU-ALL.
    Announce = 1,
    /// An update operation withdrew its announcement.
    Deannounce = 2,
    /// A scan cursor slid its S-ALL announcement to a new key.
    Slide = 3,
    /// An update notified announced queries (the NOTIFY phase).
    Notify = 4,
    /// A relaxed `⊥` answer entered the recovery path.
    Recovery = 5,
    /// A node was retired into a registry.
    Retire = 6,
    /// A `stall-injection` entry point parked an operation mid-flight.
    Stall = 7,
    /// A registry garbage sweep ran.
    Sweep = 8,
    /// An epoch domain entered or left fenced (hazard-filtered) mode
    /// (`aux = 1` on entry, `aux = 0` on exit).
    Fence = 9,
    /// A `fault-injection` plan fired (`key` = injection-point index,
    /// `aux` = action discriminant).
    Fault = 10,
    /// An orphaned announcement of a dead incarnation was adopted
    /// (completed via helping and withdrawn).
    Adopt = 11,
    /// An injected `Abandon` stranded an allocated-but-unpublished update
    /// node in its pool (no helper or adopter can ever reach it).
    Stranded = 12,
}

impl FlightKind {
    /// Stable lower-case label for reports.
    pub const fn name(self) -> &'static str {
        match self {
            FlightKind::Announce => "announce",
            FlightKind::Deannounce => "deannounce",
            FlightKind::Slide => "slide",
            FlightKind::Notify => "notify",
            FlightKind::Recovery => "recovery",
            FlightKind::Retire => "retire",
            FlightKind::Stall => "stall",
            FlightKind::Sweep => "sweep",
            FlightKind::Fence => "fence",
            FlightKind::Fault => "fault",
            FlightKind::Adopt => "adopt",
            FlightKind::Stranded => "stranded",
        }
    }

    fn from_u64(v: u64) -> Option<Self> {
        Some(match v {
            1 => FlightKind::Announce,
            2 => FlightKind::Deannounce,
            3 => FlightKind::Slide,
            4 => FlightKind::Notify,
            5 => FlightKind::Recovery,
            6 => FlightKind::Retire,
            7 => FlightKind::Stall,
            8 => FlightKind::Sweep,
            9 => FlightKind::Fence,
            10 => FlightKind::Fault,
            11 => FlightKind::Adopt,
            12 => FlightKind::Stranded,
            _ => return None,
        })
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Process-global sequence id (1-based; later events have larger ids).
    pub seq: u64,
    /// Monotonic nanoseconds since the process trace anchor (shared with
    /// the op-trace layer). Stamped at `SEQ_BATCH` resolution — one raw
    /// tick read per id-batch refill, shared by the batch; see that
    /// constant's docs for the budget/resolution trade-off — and converted
    /// against the anchor when the ring is drained.
    pub ts: u64,
    /// Shard (≈ thread) id that recorded the event.
    pub shard: usize,
    /// What happened.
    pub kind: FlightKind,
    /// Operation key, or `-1` when not applicable.
    pub key: i64,
    /// Event-specific payload.
    pub aux: u64,
}

/// Entries retained per thread. Old events are overwritten; a failure dump
/// therefore shows the last `FLIGHT_CAP` events of every recording thread.
pub const FLIGHT_CAP: usize = 128;

/// Sequence ids a ring reserves from [`SEQ`] per refill. Batching keeps the
/// contended global `fetch_add` off the per-event path (one RMW per 16
/// events); the cost is ordering *resolution* — ids stay unique and
/// per-thread monotone, but two threads' events interleave only to batch
/// granularity in a sorted dump. The timestamp rides the same boundary:
/// the ring re-reads the tick counter once per refill and stamps the whole
/// batch with it (a per-event read, even a raw `rdtsc`, measurably dents
/// the <3% always-on budget), so time also interleaves threads at batch
/// resolution — strictly finer than ids alone, since batches from
/// different threads order by wall clock rather than by when they happened
/// to reserve ids, but a burst's first events can carry a stamp up to one
/// batch stale after an idle gap.
const SEQ_BATCH: u64 = 16;

/// Global sequence ids; starts at 1 so `seq == 0` marks an empty slot.
static SEQ: AtomicU64 = AtomicU64::new(1);

struct Slot {
    seq: AtomicU64,
    ts: AtomicU64,
    kind: AtomicU64,
    key: AtomicI64,
    aux: AtomicU64,
}

/// One thread's event ring.
pub(crate) struct Ring {
    slots: [Slot; FLIGHT_CAP],
    /// Next write index; only the owning thread advances it, but it is an
    /// atomic because the shard is shared with dumpers.
    cursor: AtomicU64,
    /// Next sequence id from the locally reserved batch (owner-only).
    seq_next: AtomicU64,
    /// One past the last reserved id; `seq_next == seq_end` forces a
    /// [`SEQ_BATCH`]-sized refill from the global counter.
    seq_end: AtomicU64,
    /// Raw tick stamp shared by the current id batch (owner-only; see
    /// [`SEQ_BATCH`] on the resolution trade-off).
    ts_batch: AtomicU64,
}

impl Ring {
    pub(crate) fn new() -> Self {
        Self {
            slots: [const {
                Slot {
                    seq: AtomicU64::new(0),
                    ts: AtomicU64::new(0),
                    kind: AtomicU64::new(0),
                    key: AtomicI64::new(0),
                    aux: AtomicU64::new(0),
                }
            }; FLIGHT_CAP],
            cursor: AtomicU64::new(0),
            seq_next: AtomicU64::new(0),
            seq_end: AtomicU64::new(0),
            ts_batch: AtomicU64::new(0),
        }
    }

    /// Owner-side append (see the module docs for the publication order).
    pub(crate) fn push(&self, kind: FlightKind, key: i64, aux: u64) {
        // Owner-only load + store throughout: a single thread owns the ring
        // at a time, so neither the cursor nor the batch bounds need RMWs
        // (same reasoning as the shard counters).
        let mut seq = self.seq_next.load(Ordering::Relaxed);
        if seq == self.seq_end.load(Ordering::Relaxed) {
            seq = SEQ.fetch_add(SEQ_BATCH, Ordering::Relaxed);
            self.seq_end.store(seq + SEQ_BATCH, Ordering::Relaxed);
            self.ts_batch.store(crate::now_ticks(), Ordering::Relaxed);
        }
        self.seq_next.store(seq + 1, Ordering::Relaxed);
        let c = self.cursor.load(Ordering::Relaxed);
        self.cursor.store(c.wrapping_add(1), Ordering::Relaxed);
        let i = c as usize % FLIGHT_CAP;
        let slot = &self.slots[i];
        slot.seq.store(0, Ordering::Relaxed);
        slot.ts
            .store(self.ts_batch.load(Ordering::Relaxed), Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.key.store(key, Ordering::Relaxed);
        slot.aux.store(aux, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Appends every currently-valid entry to `out` (unsorted), mapping
    /// stored ticks to nanoseconds at the given [`crate::tick_rate`] —
    /// callers sample the rate once per dump so one dump gets one linear,
    /// order-preserving map.
    pub(crate) fn drain_into(&self, shard: usize, rate: f64, out: &mut Vec<FlightEvent>) {
        for slot in &self.slots {
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let Some(kind) = FlightKind::from_u64(slot.kind.load(Ordering::Relaxed)) else {
                continue;
            };
            out.push(FlightEvent {
                seq,
                ts: crate::ticks_to_ns(slot.ts.load(Ordering::Relaxed), rate),
                shard,
                kind,
                key: slot.key.load(Ordering::Relaxed),
                aux: slot.aux.load(Ordering::Relaxed),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let ring = Ring::new();
        for k in 0..(FLIGHT_CAP as i64 + 16) {
            ring.push(FlightKind::Announce, k, 0);
        }
        let mut out = Vec::new();
        ring.drain_into(0, crate::tick_rate(), &mut out);
        assert_eq!(out.len(), FLIGHT_CAP);
        out.sort_by_key(|e| e.seq);
        // The oldest 16 events were overwritten.
        assert_eq!(out.first().unwrap().key, 16);
        assert_eq!(out.last().unwrap().key, FLIGHT_CAP as i64 + 15);
        // Sequence ids are strictly increasing.
        assert!(out.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn kind_roundtrip() {
        for k in [
            FlightKind::Announce,
            FlightKind::Deannounce,
            FlightKind::Slide,
            FlightKind::Notify,
            FlightKind::Recovery,
            FlightKind::Retire,
            FlightKind::Stall,
            FlightKind::Sweep,
            FlightKind::Fence,
            FlightKind::Fault,
            FlightKind::Adopt,
            FlightKind::Stranded,
        ] {
            assert_eq!(FlightKind::from_u64(k as u64), Some(k));
        }
        assert_eq!(FlightKind::from_u64(0), None);
        assert_eq!(FlightKind::from_u64(99), None);
    }
}
