//! Causal op-tracing: per-operation spans, phase events, helping edges.
//!
//! Counters say *how often*; the flight recorder says *what just
//! happened*. Neither answers the attribution questions that matter for a
//! multi-phase helping protocol: where inside an operation the time goes,
//! who helped whom (and how deep the helping chains get), and which CAS
//! sites burn retries under contention. This module answers them with
//! three primitives, all recorded into per-thread lock-free rings modeled
//! on the flight recorder's shard scheme:
//!
//! * **Spans** ([`span`]) — one per public operation, identified by a
//!   process-global id. A span emits an `OpBegin` event at entry and an
//!   `OpEnd` terminator from its RAII guard, carrying a status:
//!   [`SPAN_OK`], [`SPAN_PANICKED`] (the guard dropped during an unwind),
//!   or [`SPAN_ABANDONED`] (an injected `Abandon` simulated a thread dying
//!   mid-operation — see [`note_abandon`]). Every terminator path runs
//!   through the guard, so even crashed operations close their spans.
//! * **Phases** ([`phase`]) — timed sub-intervals of the protocol (pin,
//!   traverse, announce, notify, recovery, withdraw, reclaim, help). A
//!   phase guard records the duration both as a ring event (for the
//!   timeline) and into the matching [`Hist`] (for percentiles).
//! * **Helping edges** ([`help`]) — when a thread advances *another*
//!   operation (`HelpActivate`, orphan adoption), it records an edge from
//!   its current span to the helped operation's update node, identified by
//!   the node's never-reused `seq`. The owner side publishes the reverse
//!   half with [`bind`] (span ↔ node seq) right after allocating the node,
//!   so an exporter can join the two into a cross-thread causal graph even
//!   when the owner died before the helper ran. [`help`] also tracks the
//!   per-thread helping *depth* (helping triggered while already helping)
//!   and the time spent helping others vs. own work
//!   ([`Hist::PhaseHelpNs`] vs. the span totals).
//!
//! Per-site CAS attempt/failure tallies ([`cas`]) ride along: they land in
//! ordinary [`Counter`]s but are bumped only from here, so the contended
//! sites (dnode word, latest-list install, announcement cells, published
//! cursors) pay nothing unless tracing is compiled in *and* enabled.
//!
//! # Switching it off
//!
//! Three layers, mirroring the rest of the crate:
//!
//! * Without the `op-trace` cargo feature (or with `compiled-out`, which
//!   wins) every entry point here is a literal empty function.
//! * [`set_trace_enabled`]`(false)` is a runtime kill-switch checked with
//!   one `Relaxed` load; it is independent of the global
//!   [`crate::set_enabled`] switch, which also gates tracing.
//! * Recording requires both switches: `enabled() && trace_enabled()`.
//!
//! # Export
//!
//! [`drain`] decodes every buffered event (oldest overwritten first, like
//! the flight recorder); [`chrome_trace_json`] renders them as a Chrome
//! trace-event JSON document — one track per recording thread, complete
//! (`"X"`) slices for spans and phases, and flow (`"s"`/`"f"`) arrows for
//! helping edges — loadable in Perfetto or `chrome://tracing`.
//! [`summary`] is the compact text form the torture driver dumps next to
//! the flight recorder on failure.

use crate::{Counter, Hist};

// ---------------------------------------------------------------------------
// Identifiers (available regardless of features)
// ---------------------------------------------------------------------------

/// The public operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// `insert`.
    Insert = 1,
    /// `remove`.
    Remove = 2,
    /// `contains`.
    Contains = 3,
    /// `predecessor`.
    Predecessor = 4,
    /// `successor`.
    Successor = 5,
    /// `min`.
    Min = 6,
    /// `max`.
    Max = 7,
    /// `range` / `count` scans.
    Range = 8,
    /// `insert_all` / `delete_all` batches.
    Batch = 9,
    /// An explicit `adopt_orphans` sweep (adoption *inside* another
    /// operation stays attributed to that operation's span).
    Adopt = 10,
}

impl OpKind {
    /// Stable lower-case label (the Chrome slice name).
    pub const fn name(self) -> &'static str {
        match self {
            OpKind::Insert => "insert",
            OpKind::Remove => "remove",
            OpKind::Contains => "contains",
            OpKind::Predecessor => "predecessor",
            OpKind::Successor => "successor",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::Range => "range",
            OpKind::Batch => "batch",
            OpKind::Adopt => "adopt",
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => OpKind::Insert,
            2 => OpKind::Remove,
            3 => OpKind::Contains,
            4 => OpKind::Predecessor,
            5 => OpKind::Successor,
            6 => OpKind::Min,
            7 => OpKind::Max,
            8 => OpKind::Range,
            9 => OpKind::Batch,
            10 => OpKind::Adopt,
            _ => return None,
        })
    }
}

/// A timed sub-interval of the update/query protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TracePhase {
    /// Epoch pin at operation entry (announce/validate loop).
    Pin = 1,
    /// An announcement-list traversal (U-ALL/RU-ALL, both directions).
    Traverse = 2,
    /// Publishing an announcement (U-ALL/RU-ALL/P-ALL/S-ALL insert).
    Announce = 3,
    /// Notifying announced queries (`NotifyPredOps` and its mirror).
    Notify = 4,
    /// The ⊥-recovery graph computation (Definition 5.1).
    Recovery = 5,
    /// Withdrawing announcements (deannounce, query-node removal).
    Withdraw = 6,
    /// A registry garbage sweep (`collect`).
    Reclaim = 7,
    /// Advancing someone else's operation (`HelpActivate`, adoption).
    Help = 8,
}

/// Every phase, in report order.
pub const PHASES: [TracePhase; 8] = [
    TracePhase::Pin,
    TracePhase::Traverse,
    TracePhase::Announce,
    TracePhase::Notify,
    TracePhase::Recovery,
    TracePhase::Withdraw,
    TracePhase::Reclaim,
    TracePhase::Help,
];

impl TracePhase {
    /// Stable lower-case label (the Chrome slice name).
    pub const fn name(self) -> &'static str {
        match self {
            TracePhase::Pin => "pin",
            TracePhase::Traverse => "traverse",
            TracePhase::Announce => "announce",
            TracePhase::Notify => "notify",
            TracePhase::Recovery => "recovery",
            TracePhase::Withdraw => "withdraw",
            TracePhase::Reclaim => "reclaim",
            TracePhase::Help => "help",
        }
    }

    /// The latency histogram this phase's durations feed.
    pub const fn hist(self) -> Hist {
        match self {
            TracePhase::Pin => Hist::PhasePinNs,
            TracePhase::Traverse => Hist::PhaseTraverseNs,
            TracePhase::Announce => Hist::PhaseAnnounceNs,
            TracePhase::Notify => Hist::PhaseNotifyNs,
            TracePhase::Recovery => Hist::PhaseRecoveryNs,
            TracePhase::Withdraw => Hist::PhaseWithdrawNs,
            TracePhase::Reclaim => Hist::PhaseReclaimNs,
            TracePhase::Help => Hist::PhaseHelpNs,
        }
    }

    // Only the real recorder decodes packed phase bytes back into variants.
    #[cfg_attr(
        not(all(feature = "op-trace", not(feature = "compiled-out"))),
        allow(dead_code)
    )]
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => TracePhase::Pin,
            2 => TracePhase::Traverse,
            3 => TracePhase::Announce,
            4 => TracePhase::Notify,
            5 => TracePhase::Recovery,
            6 => TracePhase::Withdraw,
            7 => TracePhase::Reclaim,
            8 => TracePhase::Help,
            _ => return None,
        })
    }
}

/// A contended CAS site with per-attempt/per-failure counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasSite {
    /// The relaxed trie's dNodePtr install (`TrieCore::dnode_cas`).
    Dnode,
    /// The latest-list head install (`TrieCore::cas_latest`).
    Latest,
    /// Announcement-list cell CASes (insert/unlink/mark, all four lists).
    Announce,
    /// Published-cursor advance validation (`advance_publishing`).
    Cursor,
}

/// Every CAS site, in report order.
pub const CAS_SITES: [CasSite; 4] = [
    CasSite::Dnode,
    CasSite::Latest,
    CasSite::Announce,
    CasSite::Cursor,
];

impl CasSite {
    /// Stable lower-case label for reports.
    pub const fn name(self) -> &'static str {
        match self {
            CasSite::Dnode => "dnode",
            CasSite::Latest => "latest",
            CasSite::Announce => "announce",
            CasSite::Cursor => "cursor",
        }
    }

    /// The `(attempts, failures)` counter pair for this site.
    pub const fn counters(self) -> (Counter, Counter) {
        match self {
            CasSite::Dnode => (Counter::DnodeCasAttempts, Counter::DnodeCasFailures),
            CasSite::Latest => (Counter::LatestCasAttempts, Counter::LatestCasFailures),
            CasSite::Announce => (Counter::AnnounceCasAttempts, Counter::AnnounceCasFailures),
            CasSite::Cursor => (Counter::CursorCasAttempts, Counter::CursorCasFailures),
        }
    }
}

/// `OpEnd` status: the operation returned normally.
pub const SPAN_OK: u64 = 0;
/// `OpEnd` status: the span guard dropped during a panic unwind.
pub const SPAN_PANICKED: u64 = 1;
/// `OpEnd` status: an injected `Abandon` killed the operation mid-flight
/// (the simulated-crash terminator; see [`note_abandon`]).
pub const SPAN_ABANDONED: u64 = 2;

/// What one decoded trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened. `a` = operation key (as `i64` bits), `b` = [`OpKind`].
    OpBegin,
    /// A span closed. `a` = status ([`SPAN_OK`]/[`SPAN_PANICKED`]/
    /// [`SPAN_ABANDONED`]).
    OpEnd,
    /// A phase completed. `ts` is the phase *start*; `a` = duration in ns.
    Phase,
    /// The current span helped another operation. `a` = helped update
    /// node's seq, `b` = helping depth at the edge.
    HelpEdge,
    /// The current span owns the update node with seq `a` (the join key
    /// helpers' edges resolve against).
    Bind,
}

/// One decoded event from a trace ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Process-global sequence id (unique; per-thread monotone).
    pub seq: u64,
    /// Monotonic nanoseconds since the process trace anchor. For
    /// [`TraceEventKind::Phase`] this is the phase start.
    pub ts: u64,
    /// Trace shard (≈ thread) id that recorded the event.
    pub shard: usize,
    /// What happened.
    pub kind: TraceEventKind,
    /// The phase, for [`TraceEventKind::Phase`] events.
    pub phase: Option<TracePhase>,
    /// The span the event belongs to (0 = outside any span).
    pub span: u64,
    /// Kind-specific payload (see [`TraceEventKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`TraceEventKind`]).
    pub b: u64,
}

/// Events retained per thread before the oldest are overwritten.
pub const TRACE_CAP: usize = 4096;

// ---------------------------------------------------------------------------
// Real implementation (op-trace on, compiled-out off)
// ---------------------------------------------------------------------------

#[cfg(all(feature = "op-trace", not(feature = "compiled-out")))]
mod imp {
    use super::*;
    use crate::{add, now_ticks, record};
    use core::cell::Cell;
    use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
    use crossbeam::utils::CachePadded;

    /// The runtime kill-switch for tracing (default: on — the feature is
    /// itself the opt-in).
    static TRACE_ENABLED: AtomicBool = AtomicBool::new(true);

    pub(super) fn set_trace_enabled(on: bool) {
        TRACE_ENABLED.store(on, Ordering::SeqCst);
    }

    #[inline]
    pub(super) fn trace_enabled() -> bool {
        TRACE_ENABLED.load(Ordering::Relaxed)
    }

    #[inline]
    fn recording() -> bool {
        crate::enabled() && trace_enabled()
    }

    /// Process-global span ids; starts at 1 so 0 means "no span".
    static SPAN_IDS: AtomicU64 = AtomicU64::new(1);
    /// Global trace sequence ids, reserved in per-thread batches like the
    /// flight recorder's.
    static SEQ: AtomicU64 = AtomicU64::new(1);
    const SEQ_BATCH: u64 = 64;

    const KIND_OP_BEGIN: u64 = 1;
    const KIND_OP_END: u64 = 2;
    const KIND_PHASE: u64 = 3;
    const KIND_HELP_EDGE: u64 = 4;
    const KIND_BIND: u64 = 5;

    struct Slot {
        seq: AtomicU64,
        ts: AtomicU64,
        /// Packed `kind | phase << 8`.
        word: AtomicU64,
        span: AtomicU64,
        a: AtomicU64,
        b: AtomicU64,
    }

    /// One thread's trace ring: the flight recorder's write protocol
    /// (invalidate seq, payload, `Release`-publish seq) with a larger
    /// capacity and a wider payload.
    struct Ring {
        slots: [Slot; TRACE_CAP],
        cursor: AtomicU64,
        seq_next: AtomicU64,
        seq_end: AtomicU64,
    }

    impl Ring {
        fn new() -> Self {
            Self {
                slots: [const {
                    Slot {
                        seq: AtomicU64::new(0),
                        ts: AtomicU64::new(0),
                        word: AtomicU64::new(0),
                        span: AtomicU64::new(0),
                        a: AtomicU64::new(0),
                        b: AtomicU64::new(0),
                    }
                }; TRACE_CAP],
                cursor: AtomicU64::new(0),
                seq_next: AtomicU64::new(0),
                seq_end: AtomicU64::new(0),
            }
        }

        /// Owner-side append (owner-only loads + stores, like the flight
        /// ring: one thread owns a shard at a time).
        fn push(&self, ts: u64, kind: u64, phase: u64, span: u64, a: u64, b: u64) {
            let mut seq = self.seq_next.load(Ordering::Relaxed);
            if seq == self.seq_end.load(Ordering::Relaxed) {
                seq = SEQ.fetch_add(SEQ_BATCH, Ordering::Relaxed);
                self.seq_end.store(seq + SEQ_BATCH, Ordering::Relaxed);
            }
            self.seq_next.store(seq + 1, Ordering::Relaxed);
            let c = self.cursor.load(Ordering::Relaxed);
            self.cursor.store(c.wrapping_add(1), Ordering::Relaxed);
            let slot = &self.slots[c as usize % TRACE_CAP];
            slot.seq.store(0, Ordering::Relaxed);
            slot.ts.store(ts, Ordering::Relaxed);
            slot.word.store(kind | (phase << 8), Ordering::Relaxed);
            slot.span.store(span, Ordering::Relaxed);
            slot.a.store(a, Ordering::Relaxed);
            slot.b.store(b, Ordering::Relaxed);
            slot.seq.store(seq, Ordering::Release);
        }

        /// `rate` is one [`crate::tick_rate`] sample for the whole drain:
        /// stored tick stamps map to nanoseconds through one linear,
        /// order-preserving function.
        fn drain_into(&self, shard: usize, rate: f64, out: &mut Vec<TraceEvent>) {
            for slot in &self.slots {
                let seq = slot.seq.load(Ordering::Acquire);
                if seq == 0 {
                    continue;
                }
                let word = slot.word.load(Ordering::Relaxed);
                let kind = match word & 0xff {
                    KIND_OP_BEGIN => TraceEventKind::OpBegin,
                    KIND_OP_END => TraceEventKind::OpEnd,
                    KIND_PHASE => TraceEventKind::Phase,
                    KIND_HELP_EDGE => TraceEventKind::HelpEdge,
                    KIND_BIND => TraceEventKind::Bind,
                    _ => continue,
                };
                out.push(TraceEvent {
                    seq,
                    ts: crate::ticks_to_ns(slot.ts.load(Ordering::Relaxed), rate),
                    shard,
                    kind,
                    phase: TracePhase::from_u8(((word >> 8) & 0xff) as u8),
                    span: slot.span.load(Ordering::Relaxed),
                    a: slot.a.load(Ordering::Relaxed),
                    b: slot.b.load(Ordering::Relaxed),
                });
            }
        }
    }

    /// Per-thread trace shard: the same leaked slot-recycling list as the
    /// telemetry shards (see `claim_shard` in `lib.rs`). The ring is large
    /// (TRACE_CAP slots of 6 words), so it lives here instead of bloating
    /// every `Shard` when tracing is off.
    struct TShard {
        ring: Ring,
        id: usize,
        in_use: AtomicBool,
        next: AtomicPtr<CachePadded<TShard>>,
    }

    static TSHARDS: AtomicPtr<CachePadded<TShard>> = AtomicPtr::new(core::ptr::null_mut());
    static TSHARD_IDS: AtomicUsize = AtomicUsize::new(0);

    fn claim_tshard() -> &'static CachePadded<TShard> {
        let mut cur = TSHARDS.load(Ordering::SeqCst);
        while !cur.is_null() {
            let s = unsafe { &*cur };
            if !s.in_use.load(Ordering::SeqCst)
                && s.in_use
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return s;
            }
            cur = s.next.load(Ordering::SeqCst);
        }
        let id = TSHARD_IDS.fetch_add(1, Ordering::SeqCst);
        let s: &'static CachePadded<TShard> = Box::leak(Box::new(CachePadded::new(TShard {
            ring: Ring::new(),
            id,
            in_use: AtomicBool::new(true),
            next: AtomicPtr::new(core::ptr::null_mut()),
        })));
        loop {
            let head = TSHARDS.load(Ordering::SeqCst);
            s.next.store(head, Ordering::SeqCst);
            if TSHARDS
                .compare_exchange(
                    head,
                    s as *const _ as *mut _,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return s;
            }
        }
    }

    struct TShardHandle(&'static CachePadded<TShard>);

    impl Drop for TShardHandle {
        fn drop(&mut self) {
            let _ = TSHARD_PTR.try_with(|p| p.set(core::ptr::null()));
            self.0.in_use.store(false, Ordering::SeqCst);
        }
    }

    thread_local! {
        static TSHARD: TShardHandle = TShardHandle(claim_tshard());
        static TSHARD_PTR: Cell<*const CachePadded<TShard>> =
            const { Cell::new(core::ptr::null()) };
        /// The innermost live span on this thread (0 outside any span).
        static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
        /// Helping-nesting depth (helping triggered while already helping).
        static HELP_DEPTH: Cell<u64> = const { Cell::new(0) };
        /// Set by the unwind guards when an injected `Abandon` kills the
        /// operation; consumed by the innermost span's terminator.
        static ABANDONED: Cell<bool> = const { Cell::new(false) };
    }

    #[inline]
    fn with_ring<R>(f: impl FnOnce(&'static CachePadded<TShard>) -> R) -> Option<R> {
        let ptr = TSHARD_PTR.try_with(|p| p.get()).ok()?;
        if !ptr.is_null() {
            return Some(f(unsafe { &*ptr }));
        }
        let shard = TSHARD.try_with(|h| h.0).ok()?;
        let _ = TSHARD_PTR.try_with(|p| p.set(shard));
        Some(f(shard))
    }

    #[inline]
    fn emit(kind: u64, phase: u64, span: u64, a: u64, b: u64) {
        emit_at(now_ticks(), kind, phase, span, a, b);
    }

    /// `ts` is a raw tick stamp ([`crate::now_ticks`]); [`drain`] maps it
    /// to anchor-relative nanoseconds, like the flight recorder's.
    #[inline]
    fn emit_at(ts: u64, kind: u64, phase: u64, span: u64, a: u64, b: u64) {
        let _ = with_ring(|s| s.ring.push(ts, kind, phase, span, a, b));
    }

    /// RAII guard for one operation span; emits the `OpEnd` terminator on
    /// drop and restores the previously-current span.
    pub struct SpanGuard {
        id: u64,
        prev: u64,
    }

    pub(super) fn span(kind: OpKind, key: i64) -> SpanGuard {
        if !recording() {
            return SpanGuard { id: 0, prev: 0 };
        }
        let id = SPAN_IDS.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT_SPAN.try_with(|c| c.replace(id)).unwrap_or(0);
        add(Counter::TraceSpans, 1);
        emit(KIND_OP_BEGIN, 0, id, key as u64, kind as u64);
        SpanGuard { id, prev }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if self.id == 0 {
                return;
            }
            let _ = CURRENT_SPAN.try_with(|c| c.set(self.prev));
            // The terminator decides its status here, not at a fault site:
            // abandon is flagged by whichever unwind guard saw the injected
            // fault, and a plain unwind shows up as `panicking()`.
            let status = if ABANDONED.try_with(|f| f.replace(false)).unwrap_or(false) {
                add(Counter::SpansAbandoned, 1);
                SPAN_ABANDONED
            } else if std::thread::panicking() {
                SPAN_PANICKED
            } else {
                SPAN_OK
            };
            emit(KIND_OP_END, 0, self.id, status, 0);
        }
    }

    /// RAII guard for one timed phase; records duration (histogram + ring
    /// event) on drop.
    pub struct PhaseGuard {
        phase: u64,
        start: u64,
    }

    pub(super) fn phase(p: TracePhase) -> PhaseGuard {
        if !recording() {
            return PhaseGuard { phase: 0, start: 0 };
        }
        PhaseGuard {
            phase: p as u64,
            start: now_ticks(),
        }
    }

    impl Drop for PhaseGuard {
        fn drop(&mut self) {
            if self.phase == 0 {
                return;
            }
            // The histogram wants nanoseconds now, not at drain time, so
            // this one spot pays a clock read for the conversion rate —
            // recording-path only, and a phase close is orders rarer than
            // the per-event stamps the tick scheme keeps cheap.
            let ticks = now_ticks().saturating_sub(self.start);
            let dur = (ticks as f64 * crate::tick_rate()) as u64;
            // Unwrap is fine: phase 0 was filtered above.
            let p = TracePhase::from_u8(self.phase as u8).unwrap();
            record(p.hist(), dur);
            let span = CURRENT_SPAN.try_with(|c| c.get()).unwrap_or(0);
            emit_at(self.start, KIND_PHASE, self.phase, span, dur, 0);
        }
    }

    /// RAII guard for one helping scope: depth-tracked and timed as
    /// [`TracePhase::Help`].
    pub struct HelpScope {
        _phase: PhaseGuard,
        active: bool,
    }

    pub(super) fn help(helped_node_seq: u64) -> HelpScope {
        if !recording() {
            return HelpScope {
                _phase: PhaseGuard { phase: 0, start: 0 },
                active: false,
            };
        }
        let depth = HELP_DEPTH.try_with(|d| {
            let v = d.get() + 1;
            d.set(v);
            v
        });
        let depth = depth.unwrap_or(1);
        add(Counter::HelpEdges, 1);
        record(Hist::HelpingDepth, depth);
        let span = CURRENT_SPAN.try_with(|c| c.get()).unwrap_or(0);
        emit(KIND_HELP_EDGE, 0, span, helped_node_seq, depth);
        HelpScope {
            _phase: phase(TracePhase::Help),
            active: true,
        }
    }

    impl Drop for HelpScope {
        fn drop(&mut self) {
            if self.active {
                let _ = HELP_DEPTH.try_with(|d| d.set(d.get().saturating_sub(1)));
            }
        }
    }

    pub(super) fn bind(node_seq: u64) {
        if !recording() {
            return;
        }
        let span = CURRENT_SPAN.try_with(|c| c.get()).unwrap_or(0);
        emit(KIND_BIND, 0, span, node_seq, 0);
    }

    pub(super) fn note_abandon() {
        // Flag even when the kill-switch is off mid-flight: the span that
        // opened under an enabled switch must still terminate correctly.
        let _ = ABANDONED.try_with(|f| f.set(true));
    }

    #[inline]
    pub(super) fn cas(site: CasSite, ok: bool) {
        if !recording() {
            return;
        }
        let (attempts, failures) = site.counters();
        add(attempts, 1);
        if !ok {
            add(failures, 1);
        }
    }

    pub(super) fn current_span() -> u64 {
        CURRENT_SPAN.try_with(|c| c.get()).unwrap_or(0)
    }

    pub(super) fn drain() -> Vec<TraceEvent> {
        let mut out = Vec::new();
        let rate = crate::tick_rate();
        let mut cur = TSHARDS.load(Ordering::SeqCst);
        while !cur.is_null() {
            let s = unsafe { &*cur };
            s.ring.drain_into(s.id, rate, &mut out);
            cur = s.next.load(Ordering::SeqCst);
        }
        out.sort_by_key(|e| (e.ts, e.seq));
        out
    }
}

// ---------------------------------------------------------------------------
// Stubs (feature off, or compiled-out)
// ---------------------------------------------------------------------------

#[cfg(not(all(feature = "op-trace", not(feature = "compiled-out"))))]
mod imp {
    use super::*;

    pub(super) fn set_trace_enabled(_on: bool) {}

    #[inline]
    pub(super) fn trace_enabled() -> bool {
        false
    }

    /// Inert span guard (tracing not compiled in).
    pub struct SpanGuard;
    /// Inert phase guard (tracing not compiled in).
    pub struct PhaseGuard;
    /// Inert helping-scope guard (tracing not compiled in).
    pub struct HelpScope;

    #[inline]
    pub(super) fn span(_kind: OpKind, _key: i64) -> SpanGuard {
        SpanGuard
    }

    #[inline]
    pub(super) fn phase(_p: TracePhase) -> PhaseGuard {
        PhaseGuard
    }

    #[inline]
    pub(super) fn help(_helped_node_seq: u64) -> HelpScope {
        HelpScope
    }

    #[inline]
    pub(super) fn bind(_node_seq: u64) {}

    #[inline]
    pub(super) fn note_abandon() {}

    #[inline]
    pub(super) fn cas(_site: CasSite, _ok: bool) {}

    #[inline]
    pub(super) fn current_span() -> u64 {
        0
    }

    #[inline]
    pub(super) fn drain() -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// RAII guard for one operation span; emits the `OpEnd` terminator on drop.
pub use imp::SpanGuard;

/// RAII guard for one timed phase; records the duration on drop.
pub use imp::PhaseGuard;

/// RAII guard for one helping scope; tracks depth and time-spent-helping.
pub use imp::HelpScope;

/// Turns tracing on or off at runtime (on by default when the `op-trace`
/// feature is compiled in; a no-op otherwise). Independent of, and
/// additionally gated by, the global [`crate::set_enabled`] switch.
pub fn set_trace_enabled(on: bool) {
    imp::set_trace_enabled(on);
}

/// Whether the trace layer can currently record (feature compiled in and
/// runtime kill-switch on). Does not consult [`crate::enabled`].
#[inline]
pub fn trace_enabled() -> bool {
    imp::trace_enabled()
}

/// Whether the trace recorder is compiled into this build (`op-trace` on
/// and `compiled-out` off). Harness binaries use this to skip experiments
/// that need real capture instead of reporting empty traces.
#[inline]
pub const fn compiled() -> bool {
    cfg!(all(feature = "op-trace", not(feature = "compiled-out")))
}

/// Opens a span for one public operation. The returned guard emits the
/// `OpEnd` terminator (with panic/abandon status) when dropped, and makes
/// this span the thread's *current* span — phases, binds, and helping
/// edges recorded while it is live attribute to it. Nests: an inner span
/// restores the outer one on drop.
#[inline]
pub fn span(kind: OpKind, key: i64) -> SpanGuard {
    imp::span(kind, key)
}

/// Times one protocol phase of the current span (or of no span, for
/// free-standing work like sweeps). Records the duration into the phase's
/// histogram and the thread's trace ring on drop.
#[inline]
pub fn phase(p: TracePhase) -> PhaseGuard {
    imp::phase(p)
}

/// Records that the current span is advancing *another* operation — the
/// one owning the update node with the given never-reused `seq` — and
/// opens a helping scope: depth-tracked, timed as [`TracePhase::Help`].
#[inline]
pub fn help(helped_node_seq: u64) -> HelpScope {
    imp::help(helped_node_seq)
}

/// Publishes the owner-side half of the helping join: the current span
/// owns the update node with this `seq`. Helpers' [`help`] edges resolve
/// against the most recent bind for the same seq.
#[inline]
pub fn bind(node_seq: u64) {
    imp::bind(node_seq)
}

/// Flags the current operation as killed by an injected `Abandon`; the
/// innermost span's terminator reports [`SPAN_ABANDONED`] instead of
/// [`SPAN_PANICKED`]. Called by the unwind guards, which observe the fault
/// machinery this crate cannot depend on.
#[inline]
pub fn note_abandon() {
    imp::note_abandon()
}

/// Tallies one CAS attempt (and, when `ok` is false, one failure) at a
/// contended protocol site. No-op unless tracing records, so the hot CAS
/// sites pay nothing by default.
#[inline]
pub fn cas(site: CasSite, ok: bool) {
    imp::cas(site, ok)
}

/// The thread's current span id (0 when outside any span or when tracing
/// is off). Diagnostic/test hook.
#[inline]
pub fn current_span() -> u64 {
    imp::current_span()
}

/// Decodes every currently-buffered trace event across all threads,
/// ordered by `(ts, seq)`. Non-destructive, like the flight dump; each
/// ring holds the most recent [`TRACE_CAP`] events of its thread.
pub fn drain() -> Vec<TraceEvent> {
    imp::drain()
}

/// A compact text digest (event/span/edge counts plus the most recent
/// events), for failure dumps next to the flight recorder.
pub fn summary() -> String {
    let events = drain();
    if events.is_empty() {
        return "op-trace: no events captured (feature off, disabled, or nothing ran)\n"
            .to_string();
    }
    let mut spans = 0usize;
    let mut ends = [0usize; 3];
    let mut phases = 0usize;
    let mut edges = 0usize;
    let mut shards: Vec<usize> = Vec::new();
    for e in &events {
        if !shards.contains(&e.shard) {
            shards.push(e.shard);
        }
        match e.kind {
            TraceEventKind::OpBegin => spans += 1,
            TraceEventKind::OpEnd => ends[(e.a as usize).min(2)] += 1,
            TraceEventKind::Phase => phases += 1,
            TraceEventKind::HelpEdge => edges += 1,
            TraceEventKind::Bind => {}
        }
    }
    let mut out = format!(
        "op-trace: {} event(s) on {} thread(s): {} span begins, {} ends \
         ({} ok, {} panicked, {} abandoned), {} phases, {} help edges\n",
        events.len(),
        shards.len(),
        spans,
        ends.iter().sum::<usize>(),
        ends[0],
        ends[1],
        ends[2],
        phases,
        edges,
    );
    for e in events.iter().rev().take(16).rev() {
        let (kind, detail) = match e.kind {
            TraceEventKind::OpBegin => (
                "begin",
                format!(
                    "op={} key={}",
                    OpKind::from_u8(e.b as u8).map_or("?", |k| k.name()),
                    e.a as i64
                ),
            ),
            TraceEventKind::OpEnd => ("end", format!("status={}", e.a)),
            TraceEventKind::Phase => (
                "phase",
                format!("{} dur={}ns", e.phase.map_or("?", |p| p.name()), e.a),
            ),
            TraceEventKind::HelpEdge => ("help", format!("node_seq={} depth={}", e.a, e.b)),
            TraceEventKind::Bind => ("bind", format!("node_seq={}", e.a)),
        };
        out.push_str(&format!(
            "  @{ts:<12} t{shard:<3} span={span:<8} {kind:<6} {detail}\n",
            ts = e.ts,
            shard = e.shard,
            span = e.span,
            kind = kind,
            detail = detail,
        ));
    }
    out
}

/// Renders every buffered trace event as a Chrome trace-event JSON
/// document (the `{"traceEvents": [...]}` wrapper format), loadable in
/// Perfetto or `chrome://tracing`:
///
/// * one track (`tid`) per recording thread, named via metadata events;
/// * a complete (`"X"`) slice per span whose begin *and* terminator are
///   still buffered, and one per phase (phases nest inside their span's
///   slice by timestamp containment);
/// * a flow arrow (`"s"` → `"f"`) per helping edge: it starts at the
///   helped operation's [`bind`] point — on the *victim's* track, which is
///   what makes cross-thread helping visible — and finishes at the
///   helper's edge event. Edges whose bind aged out of the ring are
///   dropped.
///
/// Timestamps are microseconds (fractional) from the process trace anchor.
pub fn chrome_trace_json() -> String {
    let events = drain();
    let us = |ns: u64| ns as f64 / 1000.0;
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&ev);
    };

    // Track metadata: one named thread per shard.
    let mut shards: Vec<usize> = events.iter().map(|e| e.shard).collect();
    shards.sort_unstable();
    shards.dedup();
    for s in &shards {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{s},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"trace-shard-{s}\"}}}}"
            ),
        );
    }

    // Span slices: pair each OpBegin with its terminator by span id.
    for b in events.iter().filter(|e| e.kind == TraceEventKind::OpBegin) {
        let Some(end) = events
            .iter()
            .find(|e| e.kind == TraceEventKind::OpEnd && e.span == b.span)
        else {
            continue;
        };
        let name = OpKind::from_u8(b.b as u8).map_or("op", |k| k.name());
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\
                 \"name\":\"{name}\",\"cat\":\"op\",\"args\":{{\"span\":{span},\
                 \"key\":{key},\"status\":{status}}}}}",
                tid = b.shard,
                ts = us(b.ts),
                dur = us(end.ts.saturating_sub(b.ts)),
                span = b.span,
                key = b.a as i64,
                status = end.a,
            ),
        );
    }

    // Phase slices (ts is the start, a the duration).
    for p in events.iter().filter(|e| e.kind == TraceEventKind::Phase) {
        let name = p.phase.map_or("phase", |ph| ph.name());
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"dur\":{dur:.3},\
                 \"name\":\"{name}\",\"cat\":\"phase\",\"args\":{{\"span\":{span}}}}}",
                tid = p.shard,
                ts = us(p.ts),
                dur = us(p.a),
                span = p.span,
            ),
        );
    }

    // Helping flows: bind (victim side) → help edge (helper side). The
    // bind always precedes the edge — helpers only reach a node after its
    // owner published it — so the arrow direction is well-defined even for
    // adoption, where the victim died long before the adopter ran.
    for (i, h) in events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == TraceEventKind::HelpEdge)
    {
        let Some(bind) = events
            .iter()
            .rev()
            .find(|e| e.kind == TraceEventKind::Bind && e.a == h.a && e.ts <= h.ts)
        else {
            continue;
        };
        push(
            &mut out,
            format!(
                "{{\"ph\":\"s\",\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\"id\":{id},\
                 \"name\":\"help\",\"cat\":\"help\",\"args\":{{\"helped_span\":{vs},\
                 \"node_seq\":{seq}}}}}",
                tid = bind.shard,
                ts = us(bind.ts),
                id = i,
                vs = bind.span,
                seq = h.a,
            ),
        );
        push(
            &mut out,
            format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{tid},\"ts\":{ts:.3},\
                 \"id\":{id},\"name\":\"help\",\"cat\":\"help\",\
                 \"args\":{{\"helper_span\":{hs},\"depth\":{depth}}}}}",
                tid = h.shard,
                ts = us(h.ts),
                id = i,
                hs = h.span,
                depth = h.b,
            ),
        );
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(not(all(feature = "op-trace", not(feature = "compiled-out"))))]
    fn stubs_record_nothing() {
        let _s = span(OpKind::Insert, 7);
        let _p = phase(TracePhase::Announce);
        let _h = help(42);
        bind(42);
        cas(CasSite::Dnode, false);
        note_abandon();
        assert!(!trace_enabled());
        assert_eq!(current_span(), 0);
        assert!(drain().is_empty());
        assert_eq!(
            chrome_trace_json(),
            "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}"
        );
    }

    #[test]
    #[cfg(all(feature = "op-trace", not(feature = "compiled-out")))]
    fn spans_phases_and_edges_round_trip() {
        let _serial = crate::test_serial();
        crate::set_enabled(true);
        set_trace_enabled(true);
        let key = -776_001_i64; // distinctive; drain() sees other tests' events too
        {
            let _s = span(OpKind::Insert, key);
            assert_ne!(current_span(), 0);
            bind(998_877);
            let _p = phase(TracePhase::Announce);
            let _h = help(998_877);
        }
        assert_eq!(current_span(), 0);
        let events = drain();
        let begin = events
            .iter()
            .find(|e| e.kind == TraceEventKind::OpBegin && e.a as i64 == key)
            .expect("begin recorded");
        assert!(events
            .iter()
            .any(|e| e.kind == TraceEventKind::OpEnd && e.span == begin.span && e.a == SPAN_OK));
        assert!(events
            .iter()
            .any(|e| e.kind == TraceEventKind::Bind && e.a == 998_877 && e.span == begin.span));
        assert!(events
            .iter()
            .any(|e| e.kind == TraceEventKind::HelpEdge && e.a == 998_877 && e.b >= 1));
        assert!(events.iter().any(|e| e.kind == TraceEventKind::Phase
            && e.phase == Some(TracePhase::Announce)
            && e.span == begin.span));
        // Ordered by (ts, seq).
        assert!(events
            .windows(2)
            .all(|w| (w[0].ts, w[0].seq) <= (w[1].ts, w[1].seq)));

        let json = chrome_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    #[cfg(all(feature = "op-trace", not(feature = "compiled-out")))]
    fn kill_switch_stops_recording() {
        let _serial = crate::test_serial();
        crate::set_enabled(true);
        set_trace_enabled(false);
        let marker = -776_002_i64;
        {
            let _s = span(OpKind::Remove, marker);
            assert_eq!(current_span(), 0, "disabled span is inert");
        }
        assert!(!drain()
            .iter()
            .any(|e| e.kind == TraceEventKind::OpBegin && e.a as i64 == marker));
        set_trace_enabled(true);
    }
}
