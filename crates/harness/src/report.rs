//! Minimal markdown table reporting for the experiment runners.

use std::fmt::Display;

/// A markdown table under construction.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringifying each cell).
    pub fn row<D: Display>(&mut self, cells: &[D]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
        self
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = format!("\n### {}\n\n", self.title);
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the markdown rendering to stdout; when the environment
    /// variable `LFTRIE_JSON=1` is set, prints JSON lines instead (one
    /// object per row, keyed by column name) for downstream tooling.
    pub fn print(&self) {
        if std::env::var("LFTRIE_JSON").as_deref() == Ok("1") {
            print!("{}", self.to_json_lines());
        } else {
            println!("{}", self.to_markdown());
        }
    }

    /// Renders the table as JSON lines (`{"table": …, "col": value, …}`).
    pub fn to_json_lines(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        for row in &self.rows {
            let mut fields = vec![format!("\"table\":\"{}\"", escape(&self.title))];
            for (col, cell) in self.header.iter().zip(row) {
                // Emit numbers unquoted when they parse as such.
                if cell.parse::<f64>().is_ok() {
                    fields.push(format!("\"{}\":{}", escape(col), cell));
                } else {
                    fields.push(format!("\"{}\":\"{}\"", escape(col), escape(cell)));
                }
            }
            out.push_str(&format!("{{{}}}\n", fields.join(",")));
        }
        out
    }

    /// The collected rows (for tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

/// Writes one experiment's tables plus the process-global telemetry
/// snapshot to `BENCH_<exp>.json` (JSON lines: one object per table row,
/// then a final `{"telemetry": …}` object with counters, histograms, and
/// latency percentiles). The target directory is `LFTRIE_BENCH_DIR` when
/// set, else the current directory. Returns the path written.
pub fn write_bench_json(exp: &str, tables: &[Table]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("LFTRIE_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(format!("BENCH_{exp}.json"));
    let mut out = String::new();
    for t in tables {
        out.push_str(&t.to_json_lines());
    }
    out.push_str(&format!(
        "{{\"telemetry\":{}}}\n",
        lftrie_telemetry::snapshot().to_json()
    ));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Prints the environment banner every experiment report starts with
/// (DESIGN.md D9: numbers are only interpretable with the core count).
pub fn print_environment() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "environment: {} hardware thread(s); step-count feature: {}",
        cores,
        if crate::steps_enabled() { "ON" } else { "off" },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["structure", "mops"]);
        t.row(&["lockfree-trie".to_string(), "12.5".to_string()]);
        t.row(&["mutex".to_string(), "3".to_string()]);
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| lockfree-trie | 12.5 |"));
        assert!(md.contains("| mutex         | 3    |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new("t", &["a", "b"]).row(&["only-one"]);
    }

    #[test]
    fn json_lines_quote_strings_and_not_numbers() {
        let mut t = Table::new("demo", &["structure", "mops"]);
        t.row(&["lockfree-trie".to_string(), "12.5".to_string()]);
        let json = t.to_json_lines();
        assert_eq!(
            json,
            "{\"table\":\"demo\",\"structure\":\"lockfree-trie\",\"mops\":12.5}\n"
        );
    }
}
