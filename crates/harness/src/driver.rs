//! Multithreaded measurement driver.
//!
//! Spawns `threads` workers that apply deterministic operation streams to a
//! shared structure, synchronized on a barrier, and reports wall-clock
//! throughput plus (under the `step-count` feature) shared-memory steps per
//! operation — the unit of the paper's complexity claims.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use lftrie_baselines::ConcurrentOrderedSet;
use lftrie_primitives::steps;
use serde::Serialize;

use crate::workload::{apply, KeyDist, OpMix, OpStream};

/// Configuration of one measured run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunConfig {
    /// Worker count.
    pub threads: usize,
    /// Operations each worker performs.
    pub ops_per_thread: u64,
    /// Universe size keys are drawn from.
    pub universe: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Key-popularity distribution.
    pub keys: KeyDist,
    /// Base RNG seed.
    pub seed: u64,
    /// Key span of generated `Range` scans (ignored by mixes without a
    /// range share).
    pub scan_width: u64,
}

/// Result of one measured run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunResult {
    /// Total operations applied.
    pub total_ops: u64,
    /// Wall-clock time of the measured section.
    pub elapsed: Duration,
    /// Million operations per second (all threads combined).
    pub mops: f64,
    /// Mean shared-memory steps per operation (0 without `step-count`).
    pub steps_per_op: f64,
    /// Mean CAS operations per operation (0 without `step-count`).
    pub cas_per_op: f64,
}

/// Runs `cfg` against `set` and measures throughput (and steps under the
/// `step-count` feature).
///
/// Workers run identical-length deterministic streams; the clock covers the
/// span from the barrier release to the last worker finishing.
pub fn run<S: ConcurrentOrderedSet + ?Sized>(set: &S, cfg: &RunConfig) -> RunResult {
    let barrier = Barrier::new(cfg.threads + 1);
    let total_steps = std::sync::Mutex::new(steps::StepCounts::default());

    let started = std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let barrier = &barrier;
            let total_steps = &total_steps;
            let cfg = *cfg;
            let set: &S = set;
            scope.spawn(move || {
                let mut stream =
                    OpStream::with_dist(cfg.mix, cfg.keys, cfg.universe, cfg.seed, t as u64)
                        .with_scan_width(cfg.scan_width);
                barrier.wait();
                steps::reset();
                for _ in 0..cfg.ops_per_thread {
                    apply(set, stream.next_op());
                }
                let mine = steps::snapshot();
                let mut agg = total_steps.lock().unwrap();
                agg.reads += mine.reads;
                agg.writes += mine.writes;
                agg.cas += mine.cas;
                agg.min_writes += mine.min_writes;
            });
        }
        // Stamp the start *before* releasing the barrier: workers cannot
        // pass it until this thread arrives, so the stamp lower-bounds every
        // worker's first operation (stamping after the release races the
        // workers on a single-core host and can observe an empty interval).
        let start = Instant::now();
        barrier.wait();
        start
        // scope joins all workers here
    });
    let elapsed = started.elapsed();

    let total_ops = cfg.ops_per_thread * cfg.threads as u64;
    let agg = total_steps.into_inner().unwrap();
    RunResult {
        total_ops,
        elapsed,
        mops: total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        steps_per_op: agg.total() as f64 / total_ops as f64,
        cas_per_op: agg.cas as f64 / total_ops as f64,
    }
}

/// Like [`run`], but additionally records each operation's wall-clock
/// latency into the telemetry latency histogram
/// ([`lftrie_telemetry::Hist::OpLatencyNs`]).
///
/// Timing every operation costs two `Instant` reads per op, so this is a
/// separate entry point rather than a [`RunConfig`] knob: throughput
/// numbers from [`run`] stay comparable across reports, and experiments
/// opt into latency capture explicitly (e.g. for `--emit-json` snapshots).
pub fn run_instrumented<S: ConcurrentOrderedSet + ?Sized>(set: &S, cfg: &RunConfig) -> RunResult {
    let barrier = Barrier::new(cfg.threads + 1);
    let total_steps = std::sync::Mutex::new(steps::StepCounts::default());

    let started = std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let barrier = &barrier;
            let total_steps = &total_steps;
            let cfg = *cfg;
            let set: &S = set;
            scope.spawn(move || {
                let mut stream =
                    OpStream::with_dist(cfg.mix, cfg.keys, cfg.universe, cfg.seed, t as u64)
                        .with_scan_width(cfg.scan_width);
                barrier.wait();
                steps::reset();
                for _ in 0..cfg.ops_per_thread {
                    let op = stream.next_op();
                    lftrie_telemetry::time_op(|| apply(set, op));
                }
                let mine = steps::snapshot();
                let mut agg = total_steps.lock().unwrap();
                agg.reads += mine.reads;
                agg.writes += mine.writes;
                agg.cas += mine.cas;
                agg.min_writes += mine.min_writes;
            });
        }
        let start = Instant::now();
        barrier.wait();
        start
    });
    let elapsed = started.elapsed();

    let total_ops = cfg.ops_per_thread * cfg.threads as u64;
    let agg = total_steps.into_inner().unwrap();
    RunResult {
        total_ops,
        elapsed,
        mops: total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        steps_per_op: agg.total() as f64 / total_ops as f64,
        cas_per_op: agg.cas as f64 / total_ops as f64,
    }
}

/// Measures a single closure's steps on this thread (for the solo-op
/// experiments E1/E2). Returns `(elapsed, steps)`.
pub fn measure_solo<T>(f: impl FnOnce() -> T) -> (Duration, steps::StepCounts) {
    steps::reset();
    let start = Instant::now();
    let _ = std::hint::black_box(f());
    let elapsed = start.elapsed();
    (elapsed, steps::snapshot())
}

/// Runs `f` on `threads` workers for `duration`, returning the number of
/// completed calls (progress experiment E7). `stall` is invoked on a
/// dedicated non-counted thread once the workers have started.
pub fn run_against_stall<F, G>(threads: usize, duration: Duration, f: F, stall: G) -> u64
where
    F: Fn(usize) -> u64 + Sync,
    G: FnOnce() + Send,
{
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 2);
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads {
            let stop = &stop;
            let barrier = &barrier;
            let f = &f;
            workers.push(scope.spawn(move || {
                barrier.wait();
                let mut done = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    done += f(t);
                }
                done
            }));
        }
        scope.spawn(|| {
            barrier.wait();
            stall();
        });
        barrier.wait();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        workers.into_iter().map(|w| w.join().unwrap()).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lftrie_baselines::CoarseBTreeSet;
    use lftrie_core::LockFreeBinaryTrie;

    #[test]
    fn run_counts_every_operation() {
        let set = LockFreeBinaryTrie::new(256);
        let cfg = RunConfig {
            threads: 2,
            ops_per_thread: 500,
            universe: 256,
            mix: OpMix::BALANCED,
            keys: KeyDist::Uniform,
            seed: 3,
            scan_width: crate::workload::DEFAULT_SCAN_WIDTH,
        };
        let res = run(&set, &cfg);
        assert_eq!(res.total_ops, 1000);
        assert!(res.mops > 0.0);
    }

    #[test]
    fn run_instrumented_counts_ops_and_records_latency() {
        let set = LockFreeBinaryTrie::new(256);
        let cfg = RunConfig {
            threads: 2,
            ops_per_thread: 200,
            universe: 256,
            mix: OpMix::BALANCED,
            keys: KeyDist::Uniform,
            seed: 5,
            scan_width: crate::workload::DEFAULT_SCAN_WIDTH,
        };
        let before = lftrie_telemetry::histogram(lftrie_telemetry::Hist::OpLatencyNs);
        let res = run_instrumented(&set, &cfg);
        assert_eq!(res.total_ops, 400);
        let after = lftrie_telemetry::histogram(lftrie_telemetry::Hist::OpLatencyNs);
        // Telemetry is process-global; other tests may record latencies too,
        // so assert growth, not an exact count.
        if lftrie_telemetry::enabled() {
            assert!(after.count >= before.count + res.total_ops);
        }
    }

    #[test]
    fn identical_seeds_give_identical_final_state() {
        let mk = || {
            let set = CoarseBTreeSet::new();
            let cfg = RunConfig {
                threads: 1,
                ops_per_thread: 2000,
                universe: 128,
                mix: OpMix::UPDATE_HEAVY,
                keys: KeyDist::Uniform,
                seed: 11,
                scan_width: crate::workload::DEFAULT_SCAN_WIDTH,
            };
            run(&set, &cfg);
            (0..128).filter(|&x| set.contains(x)).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn run_against_stall_reports_progress() {
        let done = run_against_stall(
            2,
            Duration::from_millis(50),
            |_| 1,
            || std::thread::sleep(Duration::from_millis(10)),
        );
        assert!(done > 0);
    }
}
