//! Long-running torture driver: continuous randomized concurrent load with
//! periodic quiescent validation against a full `contains` scan.
//!
//! ```text
//! cargo run --release -p lftrie-harness --bin torture -- \
//!     [seconds] [threads] [log2_universe] [stalled_readers]
//! ```
//!
//! Defaults: 10 seconds, 4 threads, universe 2^10, 0 stalled readers.
//! Exits non-zero on any consistency violation.
//!
//! The fourth argument is the **oversubscription lane** (ISSUE 8): each
//! round additionally parks that many readers mid-traversal — pinned, with
//! their target nodes published as hazard pointers — for the whole round
//! (requires `--features stall-injection`). Combined with `threads` well
//! above the core count, this is the hostile-scheduler workload: the epoch
//! must run past the stalled readers (fenced mode), sweeps must keep the
//! backlog bounded, and the parked readers re-dereference their protected
//! nodes throughout, so a hazard-filter bug shows up as a use-after-free
//! under the sanitizer lane rather than as silent corruption.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lftrie_core::LockFreeBinaryTrie;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reports a consistency violation, dumps the unified telemetry snapshot
/// and the flight-recorder ring (the last protocol events leading up to
/// the failure), and exits non-zero.
fn fail(round: u64, trie: &LockFreeBinaryTrie, msg: &str) -> ! {
    // The heartbeat ends in `\r` with the cursor mid-line; terminate and
    // flush it so the dump below starts on a clean line instead of
    // overwriting (and being interleaved with) the last heartbeat.
    {
        use std::io::Write;
        println!();
        std::io::stdout().flush().ok();
    }
    eprintln!("round {round}: {msg}");
    eprintln!("--- telemetry at failure ---");
    eprint!("{}", trie.telemetry().to_prometheus());
    eprintln!("--- flight recorder (oldest first) ---");
    eprint!("{}", lftrie_telemetry::flight_report());
    std::process::exit(1);
}

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let seconds = args.first().copied().unwrap_or(10);
    let threads = args.get(1).copied().unwrap_or(4) as usize;
    let log2_u = args.get(2).copied().unwrap_or(10).min(24);
    let universe = 1u64 << log2_u;
    let stalled_readers = args.get(3).copied().unwrap_or(0) as usize;
    #[cfg(not(feature = "stall-injection"))]
    if stalled_readers > 0 {
        eprintln!(
            "warning: the stalled-reader lane needs --features stall-injection; \
             running without parked readers"
        );
    }

    println!(
        "torture: {seconds}s, {threads} threads, universe 2^{log2_u}, \
         {stalled_readers} stalled readers"
    );
    let start = Instant::now();
    let deadline = start + Duration::from_secs(seconds);
    let mut round = 0u64;
    let total_ops = Arc::new(AtomicU64::new(0));

    while Instant::now() < deadline {
        round += 1;
        let trie = Arc::new(LockFreeBinaryTrie::new(universe));
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let trie = Arc::clone(&trie);
                let stop = Arc::clone(&stop);
                let total_ops = Arc::clone(&total_ops);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(round ^ (t as u64) << 32);
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let k = rng.gen_range(0..universe);
                        match rng.gen_range(0..16) {
                            0..=2 => {
                                trie.insert(k);
                            }
                            3..=5 => {
                                trie.remove(k);
                            }
                            6 => {
                                std::hint::black_box(trie.contains(k));
                            }
                            7..=8 => {
                                if let Some(p) = trie.predecessor(k.max(1)) {
                                    assert!(p < k.max(1), "pred returned ≥ query");
                                }
                            }
                            9..=10 => {
                                if let Some(s) = trie.successor(k) {
                                    assert!(s > k, "succ returned ≤ query");
                                }
                            }
                            11 => {
                                let hi = (k + 32).min(universe - 1);
                                let scan = trie.range(k..=hi);
                                assert!(
                                    scan.windows(2).all(|w| w[0] < w[1]),
                                    "scan not strictly increasing"
                                );
                                assert!(
                                    scan.iter().all(|&x| x >= k && x <= hi),
                                    "scan escaped its bounds"
                                );
                            }
                            12 => {
                                let hi = (k + 32).min(universe - 1);
                                let n = trie.count(k..=hi);
                                assert!(n as u64 <= hi - k + 1, "count exceeds range width");
                            }
                            13 => {
                                if let (Some(mn), Some(mx)) = (trie.min(), trie.max()) {
                                    assert!(mn <= mx, "min above max");
                                    assert!(mx < universe, "max escaped the universe");
                                }
                            }
                            14 => {
                                if let Some(m) = trie.pop_min() {
                                    assert!(m < universe, "pop_min escaped the universe");
                                }
                            }
                            _ => {
                                let len = 8.min(universe - k);
                                let keys: Vec<u64> = (k..k + len).collect();
                                if rng.gen_bool(0.5) {
                                    assert!(
                                        trie.insert_all(&keys) <= keys.len(),
                                        "insert_all over-reported"
                                    );
                                } else {
                                    assert!(
                                        trie.delete_all(&keys) <= keys.len(),
                                        "delete_all over-reported"
                                    );
                                }
                            }
                        }
                        n += 1;
                    }
                    total_ops.fetch_add(n, Ordering::Relaxed);
                })
            })
            .collect();
        // The oversubscription lane: park readers mid-traversal for the
        // whole round. Each pins, publishes its target nodes as hazards,
        // and keeps re-dereferencing them while the writers churn — the
        // epoch must run past them and reclamation must stay bounded.
        #[cfg(feature = "stall-injection")]
        let stallers: Vec<_> = (0..stalled_readers)
            .map(|s| {
                let trie = Arc::clone(&trie);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(round.wrapping_mul(31) ^ s as u64);
                    let k = rng.gen_range(0..universe);
                    trie.insert(k);
                    let reader = trie.reader_stalled_mid_traversal(k);
                    while !stop.load(Ordering::Relaxed) {
                        assert!(
                            reader.observe(),
                            "hazard-protected node changed under a stalled reader"
                        );
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    assert!(reader.resume());
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        #[cfg(feature = "stall-injection")]
        for s in stallers {
            s.join().unwrap();
        }

        // Quiescent validation.
        let present: Vec<u64> = (0..universe).filter(|&x| trie.contains(x)).collect();
        for y in (1..universe).step_by(7) {
            let expected = present.iter().rev().find(|&&k| k < y).copied();
            let got = trie.predecessor(y);
            if got != expected {
                fail(
                    round,
                    &trie,
                    &format!("predecessor({y}) = {got:?}, expected {expected:?}"),
                );
            }
            let expected_succ = present.iter().find(|&&k| k > y).copied();
            let got_succ = trie.successor(y);
            if got_succ != expected_succ {
                fail(
                    round,
                    &trie,
                    &format!("successor({y}) = {got_succ:?}, expected {expected_succ:?}"),
                );
            }
        }
        if trie.min() != present.first().copied() || trie.max() != present.last().copied() {
            fail(
                round,
                &trie,
                &format!(
                    "min/max = {:?}/{:?}, expected {:?}/{:?}",
                    trie.min(),
                    trie.max(),
                    present.first(),
                    present.last()
                ),
            );
        }
        let mid = universe / 2;
        let expect_count = present.iter().filter(|&&k| k <= mid).count();
        if trie.count(0..=mid) != expect_count {
            fail(
                round,
                &trie,
                &format!(
                    "count(0..={mid}) = {}, expected {expect_count}",
                    trie.count(0..=mid)
                ),
            );
        }
        let lens = trie.announcements();
        if !lens.is_empty() {
            fail(
                round,
                &trie,
                &format!(
                    "announcements leaked: {}/{}/{}/{}",
                    lens.uall, lens.ruall, lens.pall, lens.sall
                ),
            );
        }
        // Heartbeat: throughput plus the reclamation health gauges that warn
        // of a wedged epoch (lagging reader) or unbounded garbage (limbo).
        let snap = trie.telemetry();
        let stats = trie.pred_traversal();
        let ops = total_ops.load(Ordering::Relaxed);
        let ops_per_s = ops as f64 / start.elapsed().as_secs_f64();
        let (epoch_lag, stalled, fenced, covered) = snap
            .epoch
            .as_ref()
            .map(|e| {
                (
                    e.min_pin_lag,
                    e.stalled_readers,
                    e.fenced,
                    e.covered_readers,
                )
            })
            .unwrap_or((0, 0, false, 0));
        let limbo: usize = snap.reclaim.iter().map(|r| r.limbo + r.pending).sum();
        let hz_freed: usize = snap.reclaim.iter().map(|r| r.fenced_reclaimed).sum();
        print!(
            "\rround {round}: ok ({ops} ops, {ops_per_s:.0} ops/s, ⊥ {bottoms}, rec {recoveries}, epoch lag {epoch_lag}, stalled {stalled}, fenced {fenced}, covered {covered}, hz-freed {hz_freed}, limbo {limbo})   ",
            bottoms = stats.bottoms,
            recoveries = stats.recoveries,
        );
        use std::io::Write;
        std::io::stdout().flush().ok();
    }
    println!(
        "\ntorture passed: {} rounds, {} ops",
        round,
        total_ops.load(Ordering::Relaxed)
    );
}
