//! Long-running torture driver: continuous randomized concurrent load with
//! periodic quiescent validation against a full `contains` scan.
//!
//! ```text
//! cargo run --release -p lftrie-harness --bin torture -- \
//!     [seconds] [threads] [log2_universe] [stalled_readers] [--trace <path>]
//! ```
//!
//! Defaults: 10 seconds, 4 threads, universe 2^10, 0 stalled readers.
//! Exits non-zero on any consistency violation.
//!
//! `--trace <path>` (requires `--features op-trace`) writes the captured
//! Chrome trace-event JSON there — at exit on success, and from the
//! failure dump on a violation, where the causal trace (spans, phases,
//! helping edges) sits next to the flight recorder.
//!
//! Environment:
//!
//! * `LFTRIE_TORTURE_SEED` — base seed folded into every per-thread RNG
//!   and fault decision (default 0). A failure dump echoes the full
//!   reproduction line, seed included.
//! * `LFTRIE_TORTURE_FAULTS` — `panic`, `abandon`, or `mixed` arms the
//!   chaos lane (requires `--features fault-injection`): every worker runs
//!   under a seeded `FaultPlan` that fires yields, stalls, panics, and
//!   thread abandonment at the named injection points. Panicked operations
//!   are completed by the unwind guards; abandoned incarnations' leftover
//!   announcements are adopted at round end, and the round then validates
//!   the usual quiescent invariants *plus* full announcement drain.
//! * `LFTRIE_TORTURE_FAULT_RATE` — firing probability per 1024 point
//!   occurrences (default 24).
//!
//! The fourth argument is the **oversubscription lane** (ISSUE 8): each
//! round additionally parks that many readers mid-traversal — pinned, with
//! their target nodes published as hazard pointers — for the whole round
//! (requires `--features stall-injection`). Combined with `threads` well
//! above the core count, this is the hostile-scheduler workload: the epoch
//! must run past the stalled readers (fenced mode), sweeps must keep the
//! backlog bounded, and the parked readers re-dereference their protected
//! nodes throughout, so a hazard-filter bug shows up as a use-after-free
//! under the sanitizer lane rather than as silent corruption.
//!
//! A **progress watchdog** guards every round: the workers must complete a
//! minimum number of operations per round even while the fault plan fires
//! (surviving threads must keep progressing past crashed ones — the
//! lock-freedom claim under crashes). A violation dumps telemetry, the
//! flight recorder, and the fault log.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use lftrie_core::LockFreeBinaryTrie;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything needed to reproduce a run, echoed by every failure dump.
#[derive(Clone)]
struct Repro {
    seconds: u64,
    threads: usize,
    log2_u: u64,
    stalled_readers: usize,
    seed: u64,
    faults: String,
    fault_rate: u32,
}

impl Repro {
    fn print(&self) {
        eprintln!("--- reproduction ---");
        eprintln!(
            "LFTRIE_TORTURE_SEED={} LFTRIE_TORTURE_FAULTS={} LFTRIE_TORTURE_FAULT_RATE={} \\",
            self.seed,
            if self.faults.is_empty() {
                "\"\"".to_string()
            } else {
                self.faults.clone()
            },
            self.fault_rate,
        );
        eprintln!(
            "  cargo run --release -p lftrie-harness --features fault-injection,stall-injection \
             --bin torture -- {} {} {} {}",
            self.seconds, self.threads, self.log2_u, self.stalled_readers
        );
    }
}

/// Where `--trace` asked for the Chrome trace-event JSON, if anywhere.
/// Global so the failure path can flush the trace without threading the
/// path through every validation call.
static TRACE_PATH: OnceLock<String> = OnceLock::new();

/// Writes the captured Chrome trace-event JSON to the `--trace` path (if
/// one was given and capture is compiled in). Returns the path on success.
fn write_trace() -> Option<&'static str> {
    let path = TRACE_PATH.get()?;
    match std::fs::write(path, lftrie_telemetry::trace::chrome_trace_json()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("failed to write trace {path}: {e}");
            None
        }
    }
}

/// Reports a consistency violation, dumps the unified telemetry snapshot,
/// the flight-recorder ring (the last protocol events leading up to the
/// failure), the causal op-trace digest, the fault log, and the
/// reproduction seed, then exits non-zero.
fn fail(round: u64, trie: &LockFreeBinaryTrie, repro: &Repro, msg: &str) -> ! {
    // The heartbeat ends in `\r` with the cursor mid-line; terminate and
    // flush it so the dump below starts on a clean line instead of
    // overwriting (and being interleaved with) the last heartbeat.
    {
        use std::io::Write;
        println!();
        std::io::stdout().flush().ok();
    }
    eprintln!("round {round}: {msg}");
    repro.print();
    eprintln!("--- telemetry at failure ---");
    eprint!("{}", trie.telemetry().to_prometheus());
    eprintln!("--- flight recorder (oldest first) ---");
    eprint!("{}", lftrie_telemetry::flight_report());
    eprintln!("--- op-trace ---");
    eprint!("{}", lftrie_telemetry::trace::summary());
    if let Some(path) = write_trace() {
        eprintln!("wrote Chrome trace-event JSON to {path}");
    }
    #[cfg(feature = "fault-injection")]
    {
        eprintln!("--- fault log ---");
        eprint!("{}", lftrie_core::fault::format_log());
    }
    std::process::exit(1);
}

/// Installs the process-global fault plan described by the environment and
/// returns whether the chaos lane is armed.
#[cfg(feature = "fault-injection")]
fn install_fault_plan(repro: &Repro) -> bool {
    use lftrie_core::fault::{self, FaultAction, FaultPlan};
    let actions: &[FaultAction] = match repro.faults.as_str() {
        "" => return false,
        "panic" => &[FaultAction::Yield, FaultAction::Stall, FaultAction::Panic],
        "abandon" => &[FaultAction::Yield, FaultAction::Stall, FaultAction::Abandon],
        "mixed" => &[
            FaultAction::Yield,
            FaultAction::Stall,
            FaultAction::Panic,
            FaultAction::Abandon,
        ],
        other => {
            eprintln!("unknown LFTRIE_TORTURE_FAULTS mode {other:?} (want panic|abandon|mixed)");
            std::process::exit(2);
        }
    };
    fault::install(
        FaultPlan::seeded(repro.seed)
            .with_rate(repro.fault_rate)
            .with_actions(actions),
    );
    fault::silence_injected_panics();
    true
}

#[cfg(not(feature = "fault-injection"))]
fn install_fault_plan(repro: &Repro) -> bool {
    if !repro.faults.is_empty() {
        eprintln!(
            "warning: LFTRIE_TORTURE_FAULTS needs --features fault-injection; \
             running without the chaos lane"
        );
    }
    false
}

/// One worker operation against the trie; panics injected mid-operation
/// unwind out of here (and are handled by the caller).
fn one_op(trie: &LockFreeBinaryTrie, rng: &mut StdRng, universe: u64) {
    let k = rng.gen_range(0..universe);
    match rng.gen_range(0..16) {
        0..=2 => {
            trie.insert(k);
        }
        3..=5 => {
            trie.remove(k);
        }
        6 => {
            std::hint::black_box(trie.contains(k));
        }
        7..=8 => {
            if let Some(p) = trie.predecessor(k.max(1)) {
                assert!(p < k.max(1), "pred returned ≥ query");
            }
        }
        9..=10 => {
            if let Some(s) = trie.successor(k) {
                assert!(s > k, "succ returned ≤ query");
            }
        }
        11 => {
            let hi = (k + 32).min(universe - 1);
            let scan = trie.range(k..=hi);
            assert!(
                scan.windows(2).all(|w| w[0] < w[1]),
                "scan not strictly increasing"
            );
            assert!(
                scan.iter().all(|&x| x >= k && x <= hi),
                "scan escaped its bounds"
            );
        }
        12 => {
            let hi = (k + 32).min(universe - 1);
            let n = trie.count(k..=hi);
            assert!(n as u64 <= hi - k + 1, "count exceeds range width");
        }
        13 => {
            if let (Some(mn), Some(mx)) = (trie.min(), trie.max()) {
                assert!(mn <= mx, "min above max");
                assert!(mx < universe, "max escaped the universe");
            }
        }
        14 => {
            if let Some(m) = trie.pop_min() {
                assert!(m < universe, "pop_min escaped the universe");
            }
        }
        _ => {
            let len = 8.min(universe - k);
            let keys: Vec<u64> = (k..k + len).collect();
            if rng.gen_bool(0.5) {
                assert!(
                    trie.insert_all(&keys) <= keys.len(),
                    "insert_all over-reported"
                );
            } else {
                assert!(
                    trie.delete_all(&keys) <= keys.len(),
                    "delete_all over-reported"
                );
            }
        }
    }
}

/// The chaos-lane worker loop: every operation runs under `catch_unwind`;
/// injected panics are absorbed (the unwind guards completed the
/// operation), an injected abandon additionally kills this thread's
/// liveness incarnation — its leftover announcements become orphans for
/// adoption — and anything else is a real bug and is re-thrown.
#[cfg(feature = "fault-injection")]
fn worker_loop_faulty(
    trie: &LockFreeBinaryTrie,
    rng: &mut StdRng,
    universe: u64,
    stop: &AtomicBool,
    salt: u64,
) -> u64 {
    use lftrie_core::fault;
    fault::arm(salt);
    let mut n = 0u64;
    while !stop.load(Ordering::Relaxed) {
        match std::panic::catch_unwind(core::panic::AssertUnwindSafe(|| {
            one_op(trie, rng, universe)
        })) {
            Ok(()) => n += 1,
            Err(payload) => {
                // An abandon already killed this thread's liveness
                // incarnation (its in-flight footprint is now orphaned for
                // adoption); consuming the flag lets the thread keep
                // working under a fresh incarnation — the surviving-thread
                // progress the watchdog checks. A plain injected panic was
                // cleaned up by the unwind guards. Anything else is real.
                if !fault::take_abandoned()
                    && payload.downcast_ref::<fault::InjectedFault>().is_none()
                {
                    std::panic::resume_unwind(payload); // a real bug
                }
            }
        }
    }
    fault::disarm();
    n
}

fn worker_loop_plain(
    trie: &LockFreeBinaryTrie,
    rng: &mut StdRng,
    universe: u64,
    stop: &AtomicBool,
) -> u64 {
    let mut n = 0u64;
    while !stop.load(Ordering::Relaxed) {
        one_op(trie, rng, universe);
        n += 1;
    }
    n
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    // `--trace <path>` takes a value: pull the pair out before the numeric
    // positional parse below.
    if let Some(i) = raw.iter().position(|a| a == "--trace") {
        if i + 1 >= raw.len() {
            eprintln!("--trace requires a path argument");
            std::process::exit(2);
        }
        let path = raw.remove(i + 1);
        raw.remove(i);
        if lftrie_telemetry::trace::compiled() {
            TRACE_PATH.set(path).unwrap();
        } else {
            eprintln!("warning: --trace needs --features op-trace; running without capture");
        }
    }
    let args: Vec<u64> = raw.iter().filter_map(|a| a.parse().ok()).collect();
    let seconds = args.first().copied().unwrap_or(10);
    let threads = args.get(1).copied().unwrap_or(4) as usize;
    let log2_u = args.get(2).copied().unwrap_or(10).min(24);
    let universe = 1u64 << log2_u;
    let stalled_readers = args.get(3).copied().unwrap_or(0) as usize;
    #[cfg(not(feature = "stall-injection"))]
    if stalled_readers > 0 {
        eprintln!(
            "warning: the stalled-reader lane needs --features stall-injection; \
             running without parked readers"
        );
    }
    let env_u64 = |name: &str, default: u64| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let repro = Repro {
        seconds,
        threads,
        log2_u,
        stalled_readers,
        seed: env_u64("LFTRIE_TORTURE_SEED", 0),
        faults: std::env::var("LFTRIE_TORTURE_FAULTS").unwrap_or_default(),
        fault_rate: env_u64("LFTRIE_TORTURE_FAULT_RATE", 24) as u32,
    };
    let faulty = install_fault_plan(&repro);

    println!(
        "torture: {seconds}s, {threads} threads, universe 2^{log2_u}, \
         {stalled_readers} stalled readers, seed {}, faults {}",
        repro.seed,
        if repro.faults.is_empty() {
            "off"
        } else {
            &repro.faults
        }
    );
    let start = Instant::now();
    let deadline = start + Duration::from_secs(seconds);
    let mut round = 0u64;
    let total_ops = Arc::new(AtomicU64::new(0));
    // Progress watchdog floor: even under the fault plan, the worker pool
    // as a whole must clear this many operations per 300 ms round. The
    // floor is intentionally far below fault-free throughput (~10^5/round)
    // — it catches a wedged trie, not a slow one.
    let min_ops_per_round = 10 * threads as u64;

    while Instant::now() < deadline {
        round += 1;
        let trie = Arc::new(LockFreeBinaryTrie::new(universe));
        let stop = Arc::new(AtomicBool::new(false));
        let round_ops = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let trie = Arc::clone(&trie);
                let stop = Arc::clone(&stop);
                let total_ops = Arc::clone(&total_ops);
                let round_ops = Arc::clone(&round_ops);
                let base_seed = repro.seed;
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(base_seed ^ round ^ ((t as u64) << 32));
                    let salt = (round << 8) ^ t as u64;
                    let n = if faulty {
                        #[cfg(feature = "fault-injection")]
                        {
                            worker_loop_faulty(&trie, &mut rng, universe, &stop, salt)
                        }
                        #[cfg(not(feature = "fault-injection"))]
                        {
                            let _ = salt;
                            unreachable!("chaos lane armed without the feature")
                        }
                    } else {
                        let _ = salt;
                        worker_loop_plain(&trie, &mut rng, universe, &stop)
                    };
                    total_ops.fetch_add(n, Ordering::Relaxed);
                    round_ops.fetch_add(n, Ordering::Relaxed);
                })
            })
            .collect();
        // The oversubscription lane: park readers mid-traversal for the
        // whole round. Each pins, publishes its target nodes as hazards,
        // and keeps re-dereferencing them while the writers churn — the
        // epoch must run past them and reclamation must stay bounded.
        #[cfg(feature = "stall-injection")]
        let stallers: Vec<_> = (0..stalled_readers)
            .map(|s| {
                let trie = Arc::clone(&trie);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(round.wrapping_mul(31) ^ s as u64);
                    let k = rng.gen_range(0..universe);
                    trie.insert(k);
                    let reader = trie.reader_stalled_mid_traversal(k);
                    while !stop.load(Ordering::Relaxed) {
                        assert!(
                            reader.observe(),
                            "hazard-protected node changed under a stalled reader"
                        );
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    assert!(reader.resume());
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            w.join().unwrap();
        }
        #[cfg(feature = "stall-injection")]
        for s in stallers {
            s.join().unwrap();
        }

        // The progress watchdog: surviving threads must have kept working
        // while the fault plan fired.
        let this_round = round_ops.load(Ordering::Relaxed);
        if this_round < min_ops_per_round {
            fail(
                round,
                &trie,
                &repro,
                &format!(
                    "progress watchdog: {this_round} ops this round \
                     (floor {min_ops_per_round})"
                ),
            );
        }

        // Adopt every announcement left behind by abandoned incarnations
        // before validating: quiescence must be *restorable*, not assumed.
        if faulty {
            trie.adopt_orphans();
        }

        // Quiescent validation.
        let present: Vec<u64> = (0..universe).filter(|&x| trie.contains(x)).collect();
        for y in (1..universe).step_by(7) {
            let expected = present.iter().rev().find(|&&k| k < y).copied();
            let got = trie.predecessor(y);
            if got != expected {
                fail(
                    round,
                    &trie,
                    &repro,
                    &format!("predecessor({y}) = {got:?}, expected {expected:?}"),
                );
            }
            let expected_succ = present.iter().find(|&&k| k > y).copied();
            let got_succ = trie.successor(y);
            if got_succ != expected_succ {
                fail(
                    round,
                    &trie,
                    &repro,
                    &format!("successor({y}) = {got_succ:?}, expected {expected_succ:?}"),
                );
            }
        }
        if trie.min() != present.first().copied() || trie.max() != present.last().copied() {
            fail(
                round,
                &trie,
                &repro,
                &format!(
                    "min/max = {:?}/{:?}, expected {:?}/{:?}",
                    trie.min(),
                    trie.max(),
                    present.first(),
                    present.last()
                ),
            );
        }
        let mid = universe / 2;
        let expect_count = present.iter().filter(|&&k| k <= mid).count();
        if trie.count(0..=mid) != expect_count {
            fail(
                round,
                &trie,
                &repro,
                &format!(
                    "count(0..={mid}) = {}, expected {expect_count}",
                    trie.count(0..=mid)
                ),
            );
        }
        let lens = trie.announcements();
        if !lens.is_empty() {
            fail(
                round,
                &trie,
                &repro,
                &format!(
                    "announcements leaked: {}/{}/{}/{}",
                    lens.uall, lens.ruall, lens.pall, lens.sall
                ),
            );
        }
        // Heartbeat: throughput plus the reclamation health gauges that warn
        // of a wedged epoch (lagging reader) or unbounded garbage (limbo).
        let snap = trie.telemetry();
        let stats = trie.pred_traversal();
        let ops = total_ops.load(Ordering::Relaxed);
        let ops_per_s = ops as f64 / start.elapsed().as_secs_f64();
        let (epoch_lag, stalled, fenced, covered) = snap
            .epoch
            .as_ref()
            .map(|e| {
                (
                    e.min_pin_lag,
                    e.stalled_readers,
                    e.fenced,
                    e.covered_readers,
                )
            })
            .unwrap_or((0, 0, false, 0));
        let limbo: usize = snap.reclaim.iter().map(|r| r.limbo + r.pending).sum();
        let hz_freed: usize = snap.reclaim.iter().map(|r| r.fenced_reclaimed).sum();
        #[cfg(feature = "fault-injection")]
        let fired = lftrie_core::fault::fired_total();
        #[cfg(not(feature = "fault-injection"))]
        let fired = 0u64;
        print!(
            "\rround {round}: ok ({ops} ops, {ops_per_s:.0} ops/s, ⊥ {bottoms}, rec {recoveries}, epoch lag {epoch_lag}, stalled {stalled}, fenced {fenced}, covered {covered}, hz-freed {hz_freed}, limbo {limbo}, faults {fired})   ",
            bottoms = stats.bottoms,
            recoveries = stats.recoveries,
        );
        use std::io::Write;
        std::io::stdout().flush().ok();
    }
    println!(
        "\ntorture passed: {} rounds, {} ops",
        round,
        total_ops.load(Ordering::Relaxed)
    );
    if let Some(path) = write_trace() {
        println!("wrote Chrome trace-event JSON to {path}");
    }
}
