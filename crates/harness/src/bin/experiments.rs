//! Experiment runner: regenerates every experiment of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! experiments [e1 e2 … e12 | all] [--quick] [--emit-json] [--trace <path>]
//! ```
//!
//! E1–E3 measure *step complexity* and need the `step-count` feature:
//!
//! ```text
//! cargo run -p lftrie-harness --release --features step-count --bin experiments -- e1 e2 e3
//! ```
//!
//! E12 measures *phase attribution* and needs the `op-trace` feature; with
//! `--trace <path>` the runner additionally writes the captured Chrome
//! trace-event JSON there after the selected experiments finish (open it
//! in Perfetto or `chrome://tracing`).
//!
//! `--emit-json` additionally writes one `BENCH_<exp>.json` per experiment
//! run (JSON lines: the table rows, then a final `{"telemetry": …}` object
//! with the process-global counters, histograms, and latency percentiles).
//! Target directory: `$LFTRIE_BENCH_DIR`, else the current directory.

use lftrie_harness::report::Table;
use lftrie_harness::{experiments, report, steps_enabled};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let emit_json = args.iter().any(|a| a == "--emit-json");
    // `--trace <path>` takes a value: pull the pair out before the
    // positional scan below mistakes the path for an experiment name.
    let trace_path = args
        .iter()
        .position(|a| a == "--trace")
        .map(|i| {
            if i + 1 >= args.len() {
                eprintln!("--trace requires a path argument");
                std::process::exit(2);
            }
            let path = args.remove(i + 1);
            args.remove(i);
            path
        })
        .filter(|_| {
            if !lftrie_telemetry::trace::compiled() {
                eprintln!("--trace ignored: rebuild with `--features op-trace` to capture");
                return false;
            }
            true
        });
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
        ]
        .map(String::from)
        .to_vec();
    }

    report::print_environment();
    if quick {
        println!("mode: --quick (reduced sizes)");
    }

    for exp in &wanted {
        let tables: Vec<Table> = match exp.as_str() {
            "e1" | "e2" | "e3" if !steps_enabled() => {
                println!(
                    "\n### {}: skipped — rebuild with `--features step-count` to measure steps",
                    exp.to_uppercase()
                );
                continue;
            }
            "e12" if !lftrie_telemetry::trace::compiled() => {
                println!(
                    "\n### E12: skipped — rebuild with `--features op-trace` to capture phases"
                );
                continue;
            }
            "e1" => vec![experiments::e1_search_steps(quick)],
            "e2" => vec![experiments::e2_relaxed_op_steps(quick)],
            "e3" => vec![experiments::e3_contention_steps(quick)],
            "e4" => experiments::e4_throughput(quick),
            "e5" => vec![experiments::e5_bottom_rate(quick)],
            "e6" => vec![experiments::e6_space(quick)],
            "e7" => vec![experiments::e7_progress(quick)],
            "e8" => vec![experiments::e8_latency(quick)],
            "e9" => vec![experiments::e9_scan(quick)],
            "e10" => vec![experiments::e10_scan_amortization(quick)],
            "e11" => vec![experiments::e11_telemetry(quick)],
            "e12" => vec![experiments::e12_phase_attribution(quick)],
            other => {
                eprintln!("unknown experiment: {other} (expected e1..e12 or all)");
                continue;
            }
        };
        for table in &tables {
            table.print();
        }
        if emit_json {
            match report::write_bench_json(exp, &tables) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("failed to write BENCH_{exp}.json: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    if let Some(path) = trace_path {
        let json = lftrie_telemetry::trace::chrome_trace_json();
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote Chrome trace-event JSON to {path}"),
            Err(e) => {
                eprintln!("failed to write trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
