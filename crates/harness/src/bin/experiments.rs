//! Experiment runner: regenerates every experiment of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! experiments [e1 e2 … e7 | all] [--quick]
//! ```
//!
//! E1–E3 measure *step complexity* and need the `step-count` feature:
//!
//! ```text
//! cargo run -p lftrie-harness --release --features step-count --bin experiments -- e1 e2 e3
//! ```

use lftrie_harness::{experiments, report, steps_enabled};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"]
            .map(String::from)
            .to_vec();
    }

    report::print_environment();
    if quick {
        println!("mode: --quick (reduced sizes)");
    }

    for exp in &wanted {
        match exp.as_str() {
            "e1" | "e2" | "e3" if !steps_enabled() => {
                println!(
                    "\n### {}: skipped — rebuild with `--features step-count` to measure steps",
                    exp.to_uppercase()
                );
            }
            "e1" => experiments::e1_search_steps(quick).print(),
            "e2" => experiments::e2_relaxed_op_steps(quick).print(),
            "e3" => experiments::e3_contention_steps(quick).print(),
            "e4" => {
                for table in experiments::e4_throughput(quick) {
                    table.print();
                }
            }
            "e5" => experiments::e5_bottom_rate(quick).print(),
            "e6" => experiments::e6_space(quick).print(),
            "e7" => experiments::e7_progress(quick).print(),
            "e8" => experiments::e8_latency(quick).print(),
            "e9" => experiments::e9_scan(quick).print(),
            "e10" => experiments::e10_scan_amortization(quick).print(),
            other => eprintln!("unknown experiment: {other} (expected e1..e10 or all)"),
        }
    }
}
