//! Evaluation harness for the lock-free binary trie reproduction.
//!
//! * [`workload`] — operation mixes and deterministic streams.
//! * [`driver`] — barrier-synchronized multithreaded measurement.
//! * [`experiments`] — the E1–E7 runners of DESIGN.md §5.
//! * [`report`] — markdown table output.
//!
//! The `experiments` binary ties it together:
//!
//! ```text
//! cargo run -p lftrie-harness --release --bin experiments -- all --quick
//! cargo run -p lftrie-harness --release --features step-count --bin experiments -- e1 e2 e3
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod experiments;
pub mod report;
pub mod workload;

/// True if the binary was compiled with the `step-count` feature (required
/// by experiments E1–E3).
pub fn steps_enabled() -> bool {
    cfg!(feature = "step-count")
}
