//! Workload specification and generation.
//!
//! Every experiment drives a [`ConcurrentOrderedSet`] with a stream of
//! operations drawn from an [`OpMix`] over a key universe. Generation is
//! deterministic per `(seed, thread)` so runs are reproducible.

use lftrie_baselines::ConcurrentOrderedSet;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// One abstract set operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `Insert(key)`
    Insert(u64),
    /// `Delete(key)`
    Remove(u64),
    /// `Search(key)`
    Contains(u64),
    /// `Predecessor(key)`
    Predecessor(u64),
    /// `Successor(key)`
    Successor(u64),
    /// `Range(lo, hi)` — an ordered scan of `[lo, hi]` (bounds already
    /// clamped to the universe at generation time).
    Range(u64, u64),
    /// `CountRange(lo, hi)` — ordered aggregate: number of keys in
    /// `[lo, hi]` (bounds clamped like `Range`).
    CountRange(u64, u64),
    /// `Min` — smallest key in the set.
    Min,
    /// `Max` — largest key in the set.
    Max,
    /// `PopMin` — delete-minimum (priority-queue pop).
    PopMin,
    /// `InsertBatch(base, len)` — `insert_all` of the contiguous keys
    /// `[base, base+len)` (clamped to the universe at generation time).
    InsertBatch(u64, u64),
    /// `DeleteBatch(base, len)` — `delete_all` of the same span.
    DeleteBatch(u64, u64),
}

/// Percentages of each operation type (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct OpMix {
    /// % of `Insert`.
    pub insert: u32,
    /// % of `Delete`.
    pub remove: u32,
    /// % of `Search`.
    pub contains: u32,
    /// % of `Predecessor`.
    pub predecessor: u32,
    /// % of `Successor`.
    pub successor: u32,
    /// % of `Range` scans (width set by [`OpStream::with_scan_width`] /
    /// [`crate::driver::RunConfig::scan_width`]).
    pub range: u32,
    /// % of `CountRange` aggregates (same width as `Range`).
    pub count_range: u32,
    /// % of `Min`/`Max` queries (split evenly between the two).
    pub min_max: u32,
    /// % of `PopMin` (delete-minimum).
    pub pop_min: u32,
    /// % of batched updates (split evenly between `InsertBatch` and
    /// `DeleteBatch`; span set by [`OpStream::with_batch_len`]).
    pub batch: u32,
}

impl OpMix {
    /// 40/40/10/10 — the contention-heavy mix of E3/E4.
    pub const UPDATE_HEAVY: OpMix = OpMix {
        insert: 40,
        remove: 40,
        contains: 10,
        predecessor: 10,
        successor: 0,
        range: 0,
        count_range: 0,
        min_max: 0,
        pop_min: 0,
        batch: 0,
    };
    /// 10/10/70/10 — read-dominated (shows off O(1) search).
    pub const SEARCH_HEAVY: OpMix = OpMix {
        insert: 10,
        remove: 10,
        contains: 70,
        predecessor: 10,
        successor: 0,
        range: 0,
        count_range: 0,
        min_max: 0,
        pop_min: 0,
        batch: 0,
    };
    /// 20/20/10/50 — predecessor-dominated (the paper's headline op).
    pub const PRED_HEAVY: OpMix = OpMix {
        insert: 20,
        remove: 20,
        contains: 10,
        predecessor: 50,
        successor: 0,
        range: 0,
        count_range: 0,
        min_max: 0,
        pop_min: 0,
        batch: 0,
    };
    /// 25/25/25/25 — balanced.
    pub const BALANCED: OpMix = OpMix {
        insert: 25,
        remove: 25,
        contains: 25,
        predecessor: 25,
        successor: 0,
        range: 0,
        count_range: 0,
        min_max: 0,
        pop_min: 0,
        batch: 0,
    };
    /// 15/15/10/10/10/40 — scan-dominated (experiment E9): ordered range
    /// scans racing a substantial update share.
    pub const SCAN_HEAVY: OpMix = OpMix {
        insert: 15,
        remove: 15,
        contains: 10,
        predecessor: 10,
        successor: 10,
        range: 40,
        count_range: 0,
        min_max: 0,
        pop_min: 0,
        batch: 0,
    };
    /// 15/15/10/5/5/10/15/10/5/10 — the aggregate/batch mix (experiment
    /// E10's churn side): ordered aggregates and batched updates racing
    /// point operations and scans.
    pub const AGGREGATE: OpMix = OpMix {
        insert: 15,
        remove: 15,
        contains: 10,
        predecessor: 5,
        successor: 5,
        range: 10,
        count_range: 15,
        min_max: 10,
        pop_min: 5,
        batch: 10,
    };
    /// 20/20/10/25/25/0 — the full ordered-query mix: predecessor and
    /// successor in equal shares.
    pub const ORDERED: OpMix = OpMix {
        insert: 20,
        remove: 20,
        contains: 10,
        predecessor: 25,
        successor: 25,
        range: 0,
        count_range: 0,
        min_max: 0,
        pop_min: 0,
        batch: 0,
    };

    /// A short identifier for reports.
    pub fn label(&self) -> &'static str {
        match *self {
            OpMix::UPDATE_HEAVY => "update-heavy",
            OpMix::SEARCH_HEAVY => "search-heavy",
            OpMix::PRED_HEAVY => "pred-heavy",
            OpMix::BALANCED => "balanced",
            OpMix::SCAN_HEAVY => "scan-heavy",
            OpMix::ORDERED => "ordered",
            OpMix::AGGREGATE => "aggregate",
            _ => "custom",
        }
    }

    fn weights(&self) -> [u32; 10] {
        let w = [
            self.insert,
            self.remove,
            self.contains,
            self.predecessor,
            self.successor,
            self.range,
            self.count_range,
            self.min_max,
            self.pop_min,
            self.batch,
        ];
        assert_eq!(w.iter().sum::<u32>(), 100, "OpMix must sum to 100");
        w
    }
}

/// Key-popularity distribution of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// YCSB-style hotspot: `hot_ops_pct`% of operations target the
    /// `hot_keys_pct`% of the keyspace at its low end — the skew that
    /// concentrates contention on few trie paths.
    Hotspot {
        /// Percent of the keyspace that is hot (1..=100).
        hot_keys_pct: u32,
        /// Percent of operations hitting the hot range (0..=100).
        hot_ops_pct: u32,
    },
}

impl KeyDist {
    /// The standard skewed preset: 90% of ops on 10% of keys.
    pub const HOT_90_10: KeyDist = KeyDist::Hotspot {
        hot_keys_pct: 10,
        hot_ops_pct: 90,
    };

    fn sample(&self, rng: &mut StdRng, universe: u64) -> u64 {
        match *self {
            KeyDist::Uniform => rng.gen_range(0..universe),
            KeyDist::Hotspot {
                hot_keys_pct,
                hot_ops_pct,
            } => {
                let hot_keys = (universe * u64::from(hot_keys_pct) / 100).max(1);
                if rng.gen_range(0..100u32) < hot_ops_pct {
                    rng.gen_range(0..hot_keys)
                } else {
                    rng.gen_range(hot_keys.min(universe - 1)..universe)
                }
            }
        }
    }
}

/// A deterministic per-thread operation stream.
#[derive(Debug)]
pub struct OpStream {
    rng: StdRng,
    dist: WeightedIndex<u32>,
    universe: u64,
    keys: KeyDist,
    scan_width: u64,
    batch_len: u64,
}

/// Default width (key span) of generated `Range` scans.
pub const DEFAULT_SCAN_WIDTH: u64 = 64;

/// Default number of keys in generated `InsertBatch`/`DeleteBatch` spans.
pub const DEFAULT_BATCH_LEN: u64 = 8;

impl OpStream {
    /// Creates the stream for `(seed, thread_id)` over `{0, …, universe−1}`
    /// with uniform keys.
    pub fn new(mix: OpMix, universe: u64, seed: u64, thread_id: u64) -> Self {
        Self::with_dist(mix, KeyDist::Uniform, universe, seed, thread_id)
    }

    /// Creates the stream with an explicit key distribution.
    pub fn with_dist(mix: OpMix, keys: KeyDist, universe: u64, seed: u64, thread_id: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ thread_id.wrapping_mul(0x9E3779B97F4A7C15)),
            dist: WeightedIndex::new(mix.weights()).expect("valid weights"),
            universe,
            keys,
            scan_width: DEFAULT_SCAN_WIDTH,
            batch_len: DEFAULT_BATCH_LEN,
        }
    }

    /// Sets the key span of generated `Range` scans (builder style).
    pub fn with_scan_width(mut self, width: u64) -> Self {
        self.scan_width = width.max(1);
        self
    }

    /// Sets the key count of generated batched updates (builder style).
    pub fn with_batch_len(mut self, len: u64) -> Self {
        self.batch_len = len.max(1);
        self
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let key = self.keys.sample(&mut self.rng, self.universe);
        let scan_hi = |k: u64, w: u64| k.saturating_add(w - 1).min(self.universe - 1);
        match self.dist.sample(&mut self.rng) {
            0 => Op::Insert(key),
            1 => Op::Remove(key),
            2 => Op::Contains(key),
            3 => Op::Predecessor(key),
            4 => Op::Successor(key),
            5 => Op::Range(key, scan_hi(key, self.scan_width)),
            6 => Op::CountRange(key, scan_hi(key, self.scan_width)),
            7 => {
                if self.rng.gen_bool(0.5) {
                    Op::Min
                } else {
                    Op::Max
                }
            }
            8 => Op::PopMin,
            _ => {
                let len = self.batch_len.min(self.universe - key);
                if self.rng.gen_bool(0.5) {
                    Op::InsertBatch(key, len)
                } else {
                    Op::DeleteBatch(key, len)
                }
            }
        }
    }
}

/// Applies `op` to `set`, returning which counter to bump.
#[inline]
pub fn apply<S: ConcurrentOrderedSet + ?Sized>(set: &S, op: Op) -> Op {
    match op {
        Op::Insert(k) => {
            std::hint::black_box(set.insert(k));
        }
        Op::Remove(k) => {
            std::hint::black_box(set.remove(k));
        }
        Op::Contains(k) => {
            std::hint::black_box(set.contains(k));
        }
        Op::Predecessor(k) => {
            std::hint::black_box(set.predecessor(k));
        }
        Op::Successor(k) => {
            std::hint::black_box(set.successor(k));
        }
        Op::Range(lo, hi) => {
            std::hint::black_box(set.range(lo, hi));
        }
        Op::CountRange(lo, hi) => {
            std::hint::black_box(set.count_range(lo, hi));
        }
        Op::Min => {
            std::hint::black_box(set.min());
        }
        Op::Max => {
            std::hint::black_box(set.max());
        }
        Op::PopMin => {
            std::hint::black_box(set.pop_min());
        }
        Op::InsertBatch(base, len) => {
            let keys: Vec<u64> = (base..base + len).collect();
            std::hint::black_box(set.insert_all(&keys));
        }
        Op::DeleteBatch(base, len) => {
            let keys: Vec<u64> = (base..base + len).collect();
            std::hint::black_box(set.delete_all(&keys));
        }
    }
    op
}

/// Fills `set` so roughly `density` of the universe is present (uniformly),
/// deterministically from `seed`. Returns the number of keys inserted.
pub fn prefill<S: ConcurrentOrderedSet + ?Sized>(
    set: &S,
    universe: u64,
    density: f64,
    seed: u64,
) -> u64 {
    assert!((0.0..=1.0).contains(&density));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inserted = 0;
    for key in 0..universe {
        if rng.gen_bool(density) && set.insert(key) {
            inserted += 1;
        }
    }
    inserted
}

#[cfg(test)]
mod tests {
    use super::*;
    use lftrie_baselines::CoarseBTreeSet;

    #[test]
    fn streams_are_deterministic_per_seed_and_thread() {
        let mut a = OpStream::new(OpMix::BALANCED, 1024, 7, 3);
        let mut b = OpStream::new(OpMix::BALANCED, 1024, 7, 3);
        let mut c = OpStream::new(OpMix::BALANCED, 1024, 7, 4);
        let ops_a: Vec<Op> = (0..100).map(|_| a.next_op()).collect();
        let ops_b: Vec<Op> = (0..100).map(|_| b.next_op()).collect();
        let ops_c: Vec<Op> = (0..100).map(|_| c.next_op()).collect();
        assert_eq!(ops_a, ops_b);
        assert_ne!(ops_a, ops_c, "different threads draw different streams");
    }

    #[test]
    fn mix_proportions_are_respected() {
        let mut s = OpStream::new(OpMix::SEARCH_HEAVY, 256, 1, 0);
        let mut contains = 0;
        for _ in 0..10_000 {
            if matches!(s.next_op(), Op::Contains(_)) {
                contains += 1;
            }
        }
        // 70% ± 3 points.
        assert!((6_700..=7_300).contains(&contains), "got {contains}");
    }

    #[test]
    fn prefill_hits_requested_density() {
        let set = CoarseBTreeSet::new();
        let n = prefill(&set, 10_000, 0.5, 42);
        assert!((4_500..=5_500).contains(&n), "got {n}");
    }

    #[test]
    fn hotspot_concentrates_on_the_hot_range() {
        let universe = 1000u64;
        let mut s = OpStream::with_dist(OpMix::BALANCED, KeyDist::HOT_90_10, universe, 3, 0);
        let mut hot = 0u32;
        let n = 20_000;
        for _ in 0..n {
            let k = match s.next_op() {
                Op::Insert(k)
                | Op::Remove(k)
                | Op::Contains(k)
                | Op::Predecessor(k)
                | Op::Successor(k)
                | Op::Range(k, _)
                | Op::CountRange(k, _)
                | Op::InsertBatch(k, _)
                | Op::DeleteBatch(k, _) => k,
                // Keyless aggregates never occur in BALANCED (weight 0).
                Op::Min | Op::Max | Op::PopMin => unreachable!(),
            };
            assert!(k < universe);
            if k < 100 {
                hot += 1;
            }
        }
        // 90% ± 2 points of ops in the bottom 10% of keys.
        assert!((17_600..=18_400).contains(&hot), "hot draws: {hot}");
    }

    #[test]
    fn all_keys_within_universe() {
        let mut s = OpStream::new(OpMix::UPDATE_HEAVY, 64, 9, 2);
        for _ in 0..1000 {
            let k = match s.next_op() {
                Op::Insert(k)
                | Op::Remove(k)
                | Op::Contains(k)
                | Op::Predecessor(k)
                | Op::Successor(k)
                | Op::Range(k, _)
                | Op::CountRange(k, _)
                | Op::InsertBatch(k, _)
                | Op::DeleteBatch(k, _) => k,
                Op::Min | Op::Max | Op::PopMin => unreachable!(),
            };
            assert!(k < 64);
        }
    }

    #[test]
    fn aggregate_mix_generates_well_formed_ops() {
        let universe = 512u64;
        let mut s = OpStream::new(OpMix::AGGREGATE, universe, 11, 0).with_batch_len(16);
        let (mut aggregates, mut batches) = (0u32, 0u32);
        let n = 10_000;
        for _ in 0..n {
            match s.next_op() {
                Op::CountRange(lo, hi) => {
                    aggregates += 1;
                    assert!(lo <= hi && hi < universe);
                }
                Op::Min | Op::Max | Op::PopMin => aggregates += 1,
                Op::InsertBatch(base, len) | Op::DeleteBatch(base, len) => {
                    batches += 1;
                    assert!(len >= 1, "batches are never empty");
                    assert!(base + len <= universe, "batch stays in the universe");
                }
                _ => {}
            }
        }
        // count_range 15 + min_max 10 + pop_min 5 = 30% ± 3; batch 10% ± 2.
        assert!((2_700..=3_300).contains(&aggregates), "got {aggregates}");
        assert!((800..=1_200).contains(&batches), "got {batches}");
    }

    #[test]
    fn scan_ops_have_clamped_bounds_and_requested_share() {
        let universe = 512u64;
        let mut s = OpStream::new(OpMix::SCAN_HEAVY, universe, 5, 0).with_scan_width(100);
        let mut scans = 0u32;
        let n = 10_000;
        for _ in 0..n {
            if let Op::Range(lo, hi) = s.next_op() {
                scans += 1;
                assert!(lo <= hi, "range bounds ordered");
                assert!(hi < universe, "range clamped to the universe");
                assert!(hi - lo < 100, "width bounded by the requested span");
            }
        }
        // 40% ± 3 points.
        assert!((3_700..=4_300).contains(&scans), "got {scans}");
    }
}
