//! The experiment runners: one function per row of DESIGN.md §5.
//!
//! The paper has no empirical section (its "tables" are complexity claims
//! and its figures are example executions — DESIGN.md D7), so each runner
//! regenerates a *claim*: it prints the measured series whose shape the
//! paper predicts, and EXPERIMENTS.md records paper-vs-measured.

use std::time::Duration;

use lftrie_baselines::{
    CoarseBTreeSet, ConcurrentOrderedSet, FlatCombiningBinaryTrie, HarrisListSet, LockFreeSkipList,
    MutexBinaryTrie, RwLockBinaryTrie,
};
use lftrie_core::{LockFreeBinaryTrie, RelaxedBinaryTrie, RelaxedPred};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::driver::{self, RunConfig};
use crate::report::Table;
use crate::workload::{prefill, KeyDist, OpMix};

const SEED: u64 = 0x005E_ED0F_1F7E;

// Capped at 8: beyond the hardware thread count the announcement lists grow
// with every preempted-mid-operation updater, and on a 1-core host 16-way
// oversubscription measures the scheduler more than the structure (D9).
fn thread_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// E1 — `Search` is O(1): steps per search are flat across universe sizes.
pub fn e1_search_steps(quick: bool) -> Table {
    let mut table = Table::new(
        "E1: Search step complexity (claim: O(1), flat in u)",
        &["u", "log2(u)", "steps/hit", "steps/miss", "ns/search"],
    );
    let exponents: &[u32] = if quick {
        &[8, 12, 16]
    } else {
        &[8, 12, 16, 20]
    };
    for &e in exponents {
        let u = 1u64 << e;
        let trie = LockFreeBinaryTrie::new(u);
        let mut rng = StdRng::seed_from_u64(SEED);
        let present: Vec<u64> = (0..500).map(|_| rng.gen_range(0..u / 2) * 2).collect();
        for &k in &present {
            trie.insert(k);
        }
        let probes = 2_000usize;
        let (hit_elapsed, hit_steps) = driver::measure_solo(|| {
            for i in 0..probes {
                std::hint::black_box(trie.contains(present[i % present.len()]));
            }
        });
        let (_, miss_steps) = driver::measure_solo(|| {
            for i in 0..probes {
                std::hint::black_box(trie.contains((2 * i + 1) as u64 % u));
            }
        });
        table.row(&[
            format!("2^{e}"),
            e.to_string(),
            format!("{:.2}", hit_steps.total() as f64 / probes as f64),
            format!("{:.2}", miss_steps.total() as f64 / probes as f64),
            format!("{:.1}", hit_elapsed.as_nanos() as f64 / probes as f64),
        ]);
    }
    table
}

/// E2 — relaxed-trie updates and predecessor are O(log u) worst case: solo
/// steps per operation grow linearly in log u.
pub fn e2_relaxed_op_steps(quick: bool) -> Table {
    let mut table = Table::new(
        "E2: relaxed-trie solo op steps (claim: linear in log u)",
        &["u", "log2(u)", "steps/insert", "steps/delete", "steps/pred"],
    );
    let exponents: &[u32] = if quick {
        &[8, 12, 16]
    } else {
        &[8, 12, 16, 20]
    };
    for &e in exponents {
        let u = 1u64 << e;
        let trie = RelaxedBinaryTrie::new(u);
        let mut rng = StdRng::seed_from_u64(SEED + u64::from(e));
        let keys: Vec<u64> = (0..500).map(|_| rng.gen_range(0..u)).collect();
        let (_, ins) = driver::measure_solo(|| {
            for &k in &keys {
                trie.insert(k);
            }
        });
        let (_, pred) = driver::measure_solo(|| {
            for &k in &keys {
                std::hint::black_box(trie.predecessor(k));
            }
        });
        let (_, del) = driver::measure_solo(|| {
            for &k in &keys {
                trie.remove(k);
            }
        });
        let n = keys.len() as f64;
        table.row(&[
            format!("2^{e}"),
            e.to_string(),
            format!("{:.1}", ins.total() as f64 / n),
            format!("{:.1}", del.total() as f64 / n),
            format!("{:.1}", pred.total() as f64 / n),
        ]);
    }
    table
}

/// E3 — amortized cost vs point contention: steps/op and CAS/op for the
/// lock-free trie as thread count (≈ ċ) grows, at fixed u.
pub fn e3_contention_steps(quick: bool) -> Table {
    let mut table = Table::new(
        "E3: lock-free trie steps vs contention (claim: O(c^2 + log u) amortized)",
        &["mix", "threads", "steps/op", "CAS/op", "Mops/s"],
    );
    let universe = 1u64 << 14;
    let ops = if quick { 4_000 } else { 20_000 };
    for mix in [OpMix::UPDATE_HEAVY, OpMix::PRED_HEAVY] {
        for &threads in &thread_counts(quick) {
            let trie = LockFreeBinaryTrie::new(universe);
            prefill(&trie, universe, 0.3, SEED);
            let res = driver::run(
                &trie,
                &RunConfig {
                    threads,
                    ops_per_thread: ops,
                    universe,
                    mix,
                    keys: KeyDist::Uniform,
                    seed: SEED,
                    scan_width: crate::workload::DEFAULT_SCAN_WIDTH,
                },
            );
            table.row(&[
                mix.label().to_string(),
                threads.to_string(),
                format!("{:.1}", res.steps_per_op),
                format!("{:.2}", res.cas_per_op),
                format!("{:.3}", res.mops),
            ]);
        }
    }
    table
}

/// E4 — throughput comparison across structures, mixes and thread counts.
pub fn e4_throughput(quick: bool) -> Vec<Table> {
    let universe = 1u64 << 16;
    let small_universe = 1u64 << 10; // Harris list is O(n): keep n humane
    let ops = if quick { 3_000 } else { 20_000 };
    let mut tables = Vec::new();
    for mix in [OpMix::UPDATE_HEAVY, OpMix::SEARCH_HEAVY, OpMix::PRED_HEAVY] {
        let mut table = Table::new(
            format!("E4: throughput, {} mix (Mops/s)", mix.label()),
            &["structure", "threads", "Mops/s"],
        );
        for &threads in &thread_counts(quick) {
            // Each structure gets a fresh instance + prefill per cell.
            let run_one = |set: &dyn ConcurrentOrderedSet, u: u64, ops: u64| -> f64 {
                prefill(set, u, 0.2, SEED);
                driver::run(
                    set,
                    &RunConfig {
                        threads,
                        ops_per_thread: ops,
                        universe: u,
                        mix,
                        keys: KeyDist::Uniform,
                        seed: SEED,
                        scan_width: crate::workload::DEFAULT_SCAN_WIDTH,
                    },
                )
                .mops
            };
            let lft = LockFreeBinaryTrie::new(universe);
            table.row(&[
                lft.name().to_string(),
                threads.to_string(),
                format!("{:.3}", run_one(&lft, universe, ops)),
            ]);
            let rlx = RelaxedBinaryTrie::new(universe);
            table.row(&[
                rlx.name().to_string(),
                threads.to_string(),
                format!("{:.3}", run_one(&rlx, universe, ops)),
            ]);
            let mtx = MutexBinaryTrie::new(universe);
            table.row(&[
                mtx.name().to_string(),
                threads.to_string(),
                format!("{:.3}", run_one(&mtx, universe, ops)),
            ]);
            let rwl = RwLockBinaryTrie::new(universe);
            table.row(&[
                rwl.name().to_string(),
                threads.to_string(),
                format!("{:.3}", run_one(&rwl, universe, ops)),
            ]);
            let btr = CoarseBTreeSet::new();
            table.row(&[
                btr.name().to_string(),
                threads.to_string(),
                format!("{:.3}", run_one(&btr, universe, ops)),
            ]);
            let fcb = FlatCombiningBinaryTrie::new(universe);
            table.row(&[
                fcb.name().to_string(),
                threads.to_string(),
                format!("{:.3}", run_one(&fcb, universe, ops)),
            ]);
            let skl = LockFreeSkipList::new();
            table.row(&[
                skl.name().to_string(),
                threads.to_string(),
                format!("{:.3}", run_one(&skl, universe, ops)),
            ]);
            let har = HarrisListSet::new();
            table.row(&[
                format!("{} (u=2^10)", har.name()),
                threads.to_string(),
                format!("{:.3}", run_one(&har, small_universe, ops / 4)),
            ]);
        }
        tables.push(table);
    }
    tables
}

/// E5 — the relaxed trie's ⊥ rate: zero without updates, growing with the
/// update share; plus how often the lock-free trie's predecessor needed the
/// recovery path.
pub fn e5_bottom_rate(quick: bool) -> Table {
    let mut table = Table::new(
        "E5: RelaxedPredecessor ⊥ rate vs update share (claim: 0 solo, grows with contention)",
        &[
            "update %",
            "threads",
            "preds",
            "⊥ rate %",
            "lockfree recovery %",
        ],
    );
    // A small universe keeps update and query paths overlapping, so the
    // interference the specification permits actually materializes.
    let universe = 1u64 << 8;
    let per_thread = if quick { 5_000u64 } else { 30_000 };
    let threads = if quick { 2usize } else { 4 };
    for update_pct in [0u32, 25, 50, 75] {
        let relaxed = RelaxedBinaryTrie::new(universe);
        let lockfree = LockFreeBinaryTrie::new(universe);
        for s in (0..universe).step_by(7) {
            relaxed.insert(s);
            lockfree.insert(s);
        }
        let run_counts = |which: usize| -> (u64, u64) {
            // returns (preds, bottoms) for the relaxed trie; lockfree uses counters
            let preds = std::sync::atomic::AtomicU64::new(0);
            let bottoms = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let relaxed = &relaxed;
                    let lockfree = &lockfree;
                    let preds = &preds;
                    let bottoms = &bottoms;
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(SEED + t as u64 + which as u64 * 97);
                        for _ in 0..per_thread {
                            let k = rng.gen_range(0..universe);
                            if rng.gen_range(0..100u32) < update_pct {
                                if rng.gen_bool(0.5) {
                                    if which == 0 {
                                        relaxed.insert(k);
                                    } else {
                                        lockfree.insert(k);
                                    }
                                } else if which == 0 {
                                    relaxed.remove(k);
                                } else {
                                    lockfree.remove(k);
                                }
                            } else if which == 0 {
                                preds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                if relaxed.predecessor(k) == RelaxedPred::Interference {
                                    bottoms.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                            } else {
                                preds.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                std::hint::black_box(lockfree.predecessor(k));
                            }
                        }
                    });
                }
            });
            (
                preds.load(std::sync::atomic::Ordering::Relaxed),
                bottoms.load(std::sync::atomic::Ordering::Relaxed),
            )
        };
        let (preds_r, bottoms_r) = run_counts(0);
        let (preds_l, _) = run_counts(1);
        let lf_bottoms = lockfree.pred_traversal().bottoms;
        table.row(&[
            update_pct.to_string(),
            threads.to_string(),
            preds_r.to_string(),
            format!("{:.3}", 100.0 * bottoms_r as f64 / preds_r.max(1) as f64),
            format!("{:.3}", 100.0 * lf_bottoms as f64 / preds_l.max(1) as f64),
        ]);
    }
    table
}

/// E6 — space: cumulative allocations grow with the update count (the
/// paper's GC-model hand-off, Θ(u) + updates), but the *resident* footprint
/// — live = allocated − reclaimed, the number the epoch collector actually
/// keeps — stays near the Θ(u) initial configuration regardless of how many
/// updates ran (DESIGN.md D4; `tests/memory_bound.rs` asserts the bound).
/// The baselines report through the same registry accounting, so the
/// steady-state comparison is apples-to-apples.
pub fn e6_space(quick: bool) -> Table {
    let mut table = Table::new(
        "E6: update-node space (claim: cumulative ~ Θ(u)+updates, live ~ Θ(u) steady state)",
        &[
            "structure",
            "u",
            "initial",
            "cumulative",
            "live",
            "reclaimed",
            "ops",
            "live delta/op",
        ],
    );
    let exponents: &[u32] = if quick { &[10, 14] } else { &[10, 14, 18] };
    let ops = if quick { 10_000u64 } else { 50_000 };
    for &e in exponents {
        let u = 1u64 << e;
        let trie = LockFreeBinaryTrie::new(u);
        let initial = trie.allocated_nodes();
        driver::run(
            &trie,
            &RunConfig {
                threads: 2,
                ops_per_thread: ops / 2,
                universe: u,
                mix: OpMix::UPDATE_HEAVY,
                keys: KeyDist::Uniform,
                seed: SEED,
                scan_width: crate::workload::DEFAULT_SCAN_WIDTH,
            },
        );
        trie.collect_garbage();
        let cumulative = trie.allocated_nodes();
        let live = trie.live_nodes();
        table.row(&[
            "lockfree-trie".to_string(),
            format!("2^{e}"),
            initial.to_string(),
            cumulative.to_string(),
            live.to_string(),
            trie.reclaimed_nodes().to_string(),
            ops.to_string(),
            format!("{:.3}", (live as f64 - initial as f64) / ops as f64),
        ]);
    }
    // Baseline rows (same op count, pointer-structure universe = key range).
    let u = 1u64 << exponents[0];
    let cfg = RunConfig {
        threads: 2,
        ops_per_thread: ops / 2,
        universe: u,
        mix: OpMix::UPDATE_HEAVY,
        keys: KeyDist::Uniform,
        seed: SEED,
        scan_width: crate::workload::DEFAULT_SCAN_WIDTH,
    };
    {
        let list = HarrisListSet::new();
        driver::run(&list, &cfg);
        list.collect_garbage();
        let (cumulative, live) = list.node_counts();
        table.row(&[
            "harris-list".to_string(),
            format!("2^{}", exponents[0]),
            "2".to_string(),
            cumulative.to_string(),
            live.to_string(),
            (cumulative - live).to_string(),
            ops.to_string(),
            format!("{:.3}", live as f64 / ops as f64),
        ]);
    }
    {
        let skip = LockFreeSkipList::new();
        driver::run(&skip, &cfg);
        skip.collect_garbage();
        let (cumulative, live) = skip.node_counts();
        table.row(&[
            "lockfree-skiplist".to_string(),
            format!("2^{}", exponents[0]),
            "2".to_string(),
            cumulative.to_string(),
            live.to_string(),
            (cumulative - live).to_string(),
            ops.to_string(),
            format!("{:.3}", live as f64 / ops as f64),
        ]);
    }
    table
}

/// E7 — progress: operations completed by other threads while an updater is
/// stalled, lock-free trie vs global-lock baseline.
pub fn e7_progress(quick: bool) -> Table {
    let mut table = Table::new(
        "E7: ops completed in 200 ms with a stalled updater (claim: lock-free ≫ lock-based)",
        &["structure", "stall kind", "threads", "ops completed"],
    );
    let universe = 1u64 << 10;
    let threads = if quick { 2 } else { 4 };
    let window = Duration::from_millis(200);

    #[cfg(feature = "stall-injection")]
    {
        let trie = LockFreeBinaryTrie::new(universe);
        prefill(&trie, universe, 0.2, SEED);
        // Abandon four inserts mid-operation (announced, activated, never
        // completed), then measure everyone else.
        for k in [3u64, 257, 511, 769] {
            trie.insert_stalled_after_activation(k);
        }
        let done = driver::run_against_stall(
            threads,
            window,
            |t| {
                let mut rng = StdRng::seed_from_u64(SEED + t as u64);
                let k = rng.gen_range(0..universe);
                match rng.gen_range(0..4) {
                    0 => {
                        trie.insert(k);
                    }
                    1 => {
                        trie.remove(k);
                    }
                    2 => {
                        std::hint::black_box(trie.contains(k));
                    }
                    _ => {
                        std::hint::black_box(trie.predecessor(k));
                    }
                }
                1
            },
            || {},
        );
        table.row(&[
            "lockfree-trie".to_string(),
            "4 abandoned inserts".to_string(),
            threads.to_string(),
            done.to_string(),
        ]);
    }
    #[cfg(not(feature = "stall-injection"))]
    {
        table.row(&[
            "lockfree-trie".to_string(),
            "(rebuild with --features stall-injection)".to_string(),
            threads.to_string(),
            "n/a".to_string(),
        ]);
    }

    let mutex_trie = MutexBinaryTrie::new(universe);
    prefill(&mutex_trie, universe, 0.2, SEED);
    let window_for_stall = window;
    let done = driver::run_against_stall(
        threads,
        window,
        |t| {
            let mut rng = StdRng::seed_from_u64(SEED + t as u64);
            let k = rng.gen_range(0..universe);
            match rng.gen_range(0..4) {
                0 => {
                    mutex_trie.insert(k);
                }
                1 => {
                    mutex_trie.remove(k);
                }
                2 => {
                    std::hint::black_box(mutex_trie.contains(k));
                }
                _ => {
                    std::hint::black_box(mutex_trie.predecessor(k));
                }
            }
            1
        },
        || {
            let guard = mutex_trie.stall_guard();
            std::thread::sleep(window_for_stall);
            drop(guard);
        },
    );
    table.row(&[
        "mutex-trie".to_string(),
        "lock held 200 ms".to_string(),
        threads.to_string(),
        done.to_string(),
    ]);
    table
}

/// E8 — predecessor latency distribution under background updates: the
/// lock-free trie must not exhibit the lock-convoy tail of the blocking
/// baselines.
pub fn e8_latency(quick: bool) -> Table {
    let mut table = Table::new(
        "E8: predecessor latency under 2 background updaters (ns)",
        &["structure", "p50", "p90", "p99", "p99.9", "max"],
    );
    let universe = 1u64 << 14;
    let samples = if quick { 20_000usize } else { 100_000 };

    let mut run_latency = |name: String, set: &dyn ConcurrentOrderedSet| {
        prefill(set, universe, 0.3, SEED);
        let stop = std::sync::atomic::AtomicBool::new(false);
        let mut lat = Vec::with_capacity(samples);
        std::thread::scope(|scope| {
            for w in 0..2u64 {
                let stop = &stop;
                let set: &dyn ConcurrentOrderedSet = set;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(SEED ^ w);
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let k = rng.gen_range(0..universe);
                        set.insert(k);
                        set.remove(k);
                    }
                });
            }
            let mut rng = StdRng::seed_from_u64(SEED ^ 0xFF);
            for _ in 0..samples {
                let y = rng.gen_range(1..universe);
                let t0 = std::time::Instant::now();
                std::hint::black_box(set.predecessor(y));
                lat.push(t0.elapsed().as_nanos() as u64);
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
        lat.sort_unstable();
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        table.row(&[
            name,
            pct(0.50).to_string(),
            pct(0.90).to_string(),
            pct(0.99).to_string(),
            pct(0.999).to_string(),
            lat.last().unwrap().to_string(),
        ]);
    };

    let lft = LockFreeBinaryTrie::new(universe);
    run_latency(lft.name().to_string(), &lft);
    let mtx = MutexBinaryTrie::new(universe);
    run_latency(mtx.name().to_string(), &mtx);
    let rwl = RwLockBinaryTrie::new(universe);
    run_latency(rwl.name().to_string(), &rwl);
    let skl = LockFreeSkipList::new();
    run_latency(skl.name().to_string(), &skl);
    table
}

/// E9 — ordered range scans: throughput and tail latency of `range(a..=b)`
/// vs scan width and update share, across the trie and every baseline.
///
/// The lock-free trie pays one certified successor step per reported key
/// (per-step snapshot); the lock-based structures scan under one critical
/// section (atomic snapshot, but a blocking one) — this experiment
/// quantifies that trade.
pub fn e9_scan(quick: bool) -> Table {
    let mut table = Table::new(
        "E9: range-scan throughput/latency vs width and update share",
        &[
            "structure",
            "width",
            "update %",
            "scans/s",
            "keys/scan",
            "p50 ns",
            "p99 ns",
        ],
    );
    let universe = 1u64 << 12;
    let small_universe = 1u64 << 9; // Harris list is O(n) per step
    let scans = if quick { 400usize } else { 2_000 };
    let widths: &[u64] = if quick { &[16, 256] } else { &[16, 256, 2048] };

    let mut run_scan =
        |name: String, set: &dyn ConcurrentOrderedSet, u: u64, width: u64, update_pct: u32| {
            prefill(set, u, 0.3, SEED);
            let stop = std::sync::atomic::AtomicBool::new(false);
            let mut lat = Vec::with_capacity(scans);
            let mut keys_total = 0u64;
            let updaters = if update_pct == 0 { 0 } else { 2u64 };
            let scanned = std::thread::scope(|scope| {
                for w in 0..updaters {
                    let stop = &stop;
                    let set: &dyn ConcurrentOrderedSet = set;
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(SEED ^ (w + 1));
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            let k = rng.gen_range(0..u);
                            if rng.gen_range(0..100u32) < update_pct {
                                if rng.gen_bool(0.5) {
                                    set.insert(k);
                                } else {
                                    set.remove(k);
                                }
                            } else {
                                std::hint::black_box(set.contains(k));
                            }
                        }
                    });
                }
                let mut rng = StdRng::seed_from_u64(SEED ^ 0xE9);
                let t0 = std::time::Instant::now();
                for _ in 0..scans {
                    let lo = rng.gen_range(0..u);
                    let hi = (lo + width - 1).min(u - 1);
                    let s0 = std::time::Instant::now();
                    let out = set.range(lo, hi);
                    lat.push(s0.elapsed().as_nanos() as u64);
                    keys_total += out.len() as u64;
                    std::hint::black_box(out);
                }
                let elapsed = t0.elapsed();
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                elapsed
            });
            lat.sort_unstable();
            let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
            table.row(&[
                name,
                width.to_string(),
                update_pct.to_string(),
                format!("{:.0}", scans as f64 / scanned.as_secs_f64()),
                format!("{:.1}", keys_total as f64 / scans as f64),
                pct(0.50).to_string(),
                pct(0.99).to_string(),
            ]);
        };

    for &width in widths {
        for update_pct in [0u32, 50] {
            let lft = LockFreeBinaryTrie::new(universe);
            run_scan(lft.name().to_string(), &lft, universe, width, update_pct);
            let rlx = RelaxedBinaryTrie::new(universe);
            run_scan(rlx.name().to_string(), &rlx, universe, width, update_pct);
            let mtx = MutexBinaryTrie::new(universe);
            run_scan(mtx.name().to_string(), &mtx, universe, width, update_pct);
            let rwl = RwLockBinaryTrie::new(universe);
            run_scan(rwl.name().to_string(), &rwl, universe, width, update_pct);
            let btr = CoarseBTreeSet::new();
            run_scan(btr.name().to_string(), &btr, universe, width, update_pct);
            let fcb = FlatCombiningBinaryTrie::new(universe);
            run_scan(fcb.name().to_string(), &fcb, universe, width, update_pct);
            let skl = LockFreeSkipList::new();
            run_scan(skl.name().to_string(), &skl, universe, width, update_pct);
            let har = HarrisListSet::new();
            run_scan(
                format!("{} (u=2^9)", har.name()),
                &har,
                small_universe,
                width.min(small_universe),
                update_pct,
            );
        }
    }
    table
}

/// E10 — scan amortization: v1 per-step scans (one S-ALL announce/withdraw
/// round-trip per certified successor step, emulated with a plain
/// `successor` chain) against v2 amortized scans (`range`, one announcement
/// slid across the whole scan), across widths and update churn.
///
/// The structural claim is one announce + one withdraw + `w − 1` slides per
/// width-`w` scan (asserted exactly by the `step-count` test suite); this
/// experiment measures what that buys in wall-clock terms, and that width-1
/// scans do not regress.
pub fn e10_scan_amortization(quick: bool) -> Table {
    let mut table = Table::new(
        "E10: per-step (v1) vs amortized (v2) ordered scans",
        &[
            "mode",
            "width",
            "update %",
            "scans/s",
            "keys/scan",
            "p50 ns",
            "p99 ns",
        ],
    );
    let universe = 1u64 << 12;
    let scans = if quick { 400usize } else { 2_000 };
    let widths: &[u64] = if quick {
        &[1, 8, 64]
    } else {
        &[1, 8, 64, 1024]
    };

    /// A width-`w` scan as v1 performed it: every step is an independent
    /// `successor` call, paying the full announce/withdraw round-trip.
    fn scan_per_step(set: &LockFreeBinaryTrie, lo: u64, hi: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if set.contains(lo) {
            out.push(lo);
        }
        let mut cur = lo;
        while cur < hi {
            match set.successor(cur) {
                Some(k) if k <= hi => {
                    out.push(k);
                    cur = k;
                }
                _ => break,
            }
        }
        out
    }

    let mut run = |mode: &str, width: u64, update_pct: u32| {
        let set = LockFreeBinaryTrie::new(universe);
        prefill(&set, universe, 0.3, SEED);
        let stop = std::sync::atomic::AtomicBool::new(false);
        let mut lat = Vec::with_capacity(scans);
        let mut keys_total = 0u64;
        let updaters = if update_pct == 0 { 0 } else { 2u64 };
        let scanned = std::thread::scope(|scope| {
            for w in 0..updaters {
                let stop = &stop;
                let set = &set;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(SEED ^ (w + 1));
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let k = rng.gen_range(0..universe);
                        if rng.gen_range(0..100u32) < update_pct {
                            if rng.gen_bool(0.5) {
                                set.insert(k);
                            } else {
                                set.remove(k);
                            }
                        } else {
                            std::hint::black_box(set.contains(k));
                        }
                    }
                });
            }
            let mut rng = StdRng::seed_from_u64(SEED ^ 0xE10);
            let t0 = std::time::Instant::now();
            for _ in 0..scans {
                let lo = rng.gen_range(0..universe);
                let hi = (lo + width - 1).min(universe - 1);
                let s0 = std::time::Instant::now();
                let out = if mode == "v1-per-step" {
                    scan_per_step(&set, lo, hi)
                } else {
                    set.range(lo..=hi)
                };
                lat.push(s0.elapsed().as_nanos() as u64);
                keys_total += out.len() as u64;
                std::hint::black_box(out);
            }
            let elapsed = t0.elapsed();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            elapsed
        });
        lat.sort_unstable();
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        table.row(&[
            mode.to_string(),
            width.to_string(),
            update_pct.to_string(),
            format!("{:.0}", scans as f64 / scanned.as_secs_f64()),
            format!("{:.1}", keys_total as f64 / scans as f64),
            pct(0.50).to_string(),
            pct(0.99).to_string(),
        ]);
    };

    for &width in widths {
        for update_pct in [0u32, 50] {
            run("v1-per-step", width, update_pct);
            run("v2-amortized", width, update_pct);
        }
    }
    table
}

/// E11 — unified telemetry: an instrumented balanced run on the lock-free
/// trie, reported entirely from the [`lftrie_telemetry`] snapshot (latency
/// percentiles from the log₂ histogram, traversal depth, epoch/reclamation
/// health). This is the experiment the CI telemetry lane runs with
/// `--emit-json`; its `BENCH_e11.json` carries the full snapshot object.
pub fn e11_telemetry(quick: bool) -> Table {
    let universe = 1u64 << 14;
    let ops = if quick { 5_000 } else { 50_000 };
    let trie = LockFreeBinaryTrie::new(universe);
    prefill(&trie, universe, 0.2, SEED);
    let res = driver::run_instrumented(
        &trie,
        &RunConfig {
            threads: 4,
            ops_per_thread: ops,
            universe,
            mix: OpMix::BALANCED,
            keys: KeyDist::Uniform,
            seed: SEED,
            scan_width: crate::workload::DEFAULT_SCAN_WIDTH,
        },
    );
    let snap = trie.telemetry();
    let lat = &snap.op_latency_ns;
    let depth = &snap.traversal_depth;
    let epoch = snap.epoch.unwrap_or_default();
    let limbo: usize = snap.reclaim.iter().map(|r| r.limbo + r.pending).sum();
    let live: usize = snap.reclaim.iter().map(|r| r.live).sum();

    let mut table = Table::new(
        "E11: unified telemetry of one instrumented balanced run",
        &["metric", "value"],
    );
    table.row(&["Mops/s".to_string(), format!("{:.3}", res.mops)]);
    table.row(&["ops_timed".to_string(), lat.count.to_string()]);
    table.row(&[
        "latency_p50_ns_le".to_string(),
        lat.percentile(50.0).to_string(),
    ]);
    table.row(&[
        "latency_p99_ns_le".to_string(),
        lat.percentile(99.0).to_string(),
    ]);
    table.row(&[
        "traversal_depth_mean".to_string(),
        format!("{:.1}", depth.mean()),
    ]);
    table.row(&["epoch_advances".to_string(), epoch.epoch.to_string()]);
    table.row(&[
        "stalled_readers".to_string(),
        epoch.stalled_readers.to_string(),
    ]);
    table.row(&["limbo_and_pending".to_string(), limbo.to_string()]);
    table.row(&["live_nodes".to_string(), live.to_string()]);
    table
}

/// E12 — causal op-tracing: where a contended balanced run spends its
/// time, phase by phase, and how much of each thread's work is helping
/// *other* operations. Requires the `op-trace` feature (the runner skips
/// it otherwise); reported entirely from the trace histograms and CAS-site
/// counters of a traced run.
pub fn e12_phase_attribution(quick: bool) -> Table {
    use lftrie_telemetry::{self as telemetry, trace, Counter, Hist};

    let universe = 1u64 << 14;
    let ops = if quick { 5_000 } else { 50_000 };
    let trie = LockFreeBinaryTrie::new(universe);
    prefill(&trie, universe, 0.2, SEED);

    let spans_before = telemetry::counters().get(Counter::TraceSpans);
    let edges_before = telemetry::counters().get(Counter::HelpEdges);
    trace::set_trace_enabled(true);
    let res = driver::run_instrumented(
        &trie,
        &RunConfig {
            threads: 4,
            ops_per_thread: ops,
            universe,
            mix: OpMix::BALANCED,
            keys: KeyDist::Uniform,
            seed: SEED,
            scan_width: crate::workload::DEFAULT_SCAN_WIDTH,
        },
    );
    let snap = trie.telemetry();
    let counters = telemetry::counters();

    let mut table = Table::new(
        "E12: per-phase latency and helping attribution of one traced run",
        &["metric", "value"],
    );
    table.row(&["Mops/s".to_string(), format!("{:.3}", res.mops)]);
    table.row(&[
        "spans".to_string(),
        (counters.get(Counter::TraceSpans) - spans_before).to_string(),
    ]);
    table.row(&[
        "help_edges".to_string(),
        (counters.get(Counter::HelpEdges) - edges_before).to_string(),
    ]);
    for h in &snap.trace {
        if h.hist == Hist::HelpingDepth {
            table.row(&[
                "helping_depth_p99".to_string(),
                h.percentile(99.0).to_string(),
            ]);
            continue;
        }
        // One row per phase that actually ran: count + p50/p99 bucket
        // upper bounds (ns).
        if h.count == 0 {
            continue;
        }
        let name = h.hist.name();
        table.row(&[format!("{name}_count"), h.count.to_string()]);
        table.row(&[format!("{name}_p50_le"), h.percentile(50.0).to_string()]);
        table.row(&[format!("{name}_p99_le"), h.percentile(99.0).to_string()]);
    }
    for site in trace::CAS_SITES {
        let (attempts_c, failures_c) = site.counters();
        let attempts = counters.get(attempts_c);
        if attempts == 0 {
            continue;
        }
        let failures = counters.get(failures_c);
        table.row(&[
            format!("cas_{}_retry_rate", site.name()),
            format!("{:.4}", failures as f64 / attempts as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_produces_rows_for_every_structure() {
        let tables = e4_throughput(true);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert_eq!(t.rows().len() % 8, 0, "8 structures per thread count");
        }
    }

    #[test]
    fn e11_reports_every_snapshot_metric() {
        let t = e11_telemetry(true);
        assert_eq!(t.rows().len(), 9);
        let metrics: Vec<&str> = t.rows().iter().map(|r| r[0].as_str()).collect();
        assert!(metrics.contains(&"latency_p99_ns_le"));
        assert!(metrics.contains(&"stalled_readers"));
        assert!(metrics.contains(&"limbo_and_pending"));
    }

    #[test]
    fn e12_reports_phases_and_helping_when_compiled() {
        let t = e12_phase_attribution(true);
        let metrics: Vec<&str> = t.rows().iter().map(|r| r[0].as_str()).collect();
        assert!(metrics.contains(&"spans"));
        assert!(metrics.contains(&"help_edges"));
        assert!(metrics.contains(&"helping_depth_p99"));
        if lftrie_telemetry::trace::compiled() {
            // A traced balanced run must attribute time to at least the
            // announce phase and tally CAS attempts at the latest list.
            assert!(metrics.iter().any(|m| m.starts_with("phase_announce_ns")));
            assert!(metrics.contains(&"cas_latest_retry_rate"));
        }
    }

    #[test]
    fn e5_zero_updates_means_zero_bottoms() {
        let table = e5_bottom_rate(true);
        let first = &table.rows()[0];
        assert_eq!(first[0], "0");
        assert_eq!(first[3], "0.000", "no updates ⇒ no ⊥ (spec §4.1)");
    }

    #[test]
    fn e6_reports_bounded_live_alongside_cumulative() {
        let table = e6_space(true);
        let rows = table.rows();
        let trie_rows: Vec<_> = rows.iter().filter(|r| r[0] == "lockfree-trie").collect();
        // Θ(u) initial footprint still grows with the universe …
        let initial: Vec<u64> = trie_rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(initial.windows(2).all(|w| w[0] < w[1]));
        for r in &trie_rows {
            let initial: u64 = r[2].parse().unwrap();
            let cumulative: u64 = r[3].parse().unwrap();
            let live: u64 = r[4].parse().unwrap();
            let reclaimed: u64 = r[5].parse().unwrap();
            // … cumulative exceeds it (updates happened), accounting adds up,
            // and the steady-state footprint sits well below cumulative.
            assert!(cumulative > initial);
            assert_eq!(cumulative - reclaimed, live);
            assert!(
                live < initial + (cumulative - initial),
                "reclamation must free some superseded nodes"
            );
        }
        // Baseline rows report through the same accounting.
        assert!(rows.iter().any(|r| r[0] == "harris-list"));
        assert!(rows.iter().any(|r| r[0] == "lockfree-skiplist"));
    }

    #[test]
    fn e10_covers_both_modes_at_every_width() {
        let table = e10_scan_amortization(true);
        let rows = table.rows();
        // 2 modes × 3 widths × 2 update shares in quick mode.
        assert_eq!(rows.len(), 2 * 3 * 2);
        for width in ["1", "8", "64"] {
            for mode in ["v1-per-step", "v2-amortized"] {
                assert!(
                    rows.iter().any(|r| r[0] == mode && r[1] == width),
                    "missing {mode} at width {width}"
                );
            }
        }
        // Both modes report the same scan results on average (same seed,
        // same prefill): keys/scan must agree in the quiescent cells.
        for width in ["1", "8", "64"] {
            let cell = |mode: &str| {
                rows.iter()
                    .find(|r| r[0] == mode && r[1] == width && r[2] == "0")
                    .map(|r| r[4].clone())
                    .unwrap()
            };
            assert_eq!(cell("v1-per-step"), cell("v2-amortized"), "width {width}");
        }
    }

    #[test]
    fn e9_scans_cover_every_structure_and_cell() {
        let table = e9_scan(true);
        let rows = table.rows();
        // 8 structures × 2 widths × 2 update shares in quick mode.
        assert_eq!(rows.len(), 8 * 2 * 2);
        for r in rows {
            let scans_per_s: f64 = r[3].parse().unwrap();
            assert!(scans_per_s > 0.0, "{} produced no scans", r[0]);
        }
        // The prefilled density is 0.3, so wide quiescent scans must return
        // a substantial fraction of their span.
        let wide_quiescent = rows
            .iter()
            .find(|r| r[0] == "lockfree-trie" && r[1] == "256" && r[2] == "0")
            .unwrap();
        let keys_per_scan: f64 = wide_quiescent[4].parse().unwrap();
        assert!(keys_per_scan > 30.0, "got {keys_per_scan} keys/scan");
    }

    #[test]
    fn e7_lockfree_progresses_under_stall() {
        let table = e7_progress(true);
        let rows = table.rows();
        #[cfg(feature = "stall-injection")]
        {
            let lf: u64 = rows[0][3].parse().unwrap();
            assert!(lf > 0, "lock-free trie must progress past stalled updates");
        }
        // The mutex row completes (possibly small due to the held lock).
        assert_eq!(rows.last().unwrap()[0], "mutex-trie");
    }
}
